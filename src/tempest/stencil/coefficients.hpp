#pragma once

#include <vector>

namespace tempest::stencil {

/// Finite-difference weights for a 1-D derivative on a line of grid points.
///
/// `offsets[i]` is the sample position in units of the grid spacing h;
/// `weights[i]` the corresponding weight. Weights are for h = 1: divide by
/// h^deriv at the point of use. Generated in double precision from the
/// Vandermonde moment conditions sum_i w_i * o_i^k = k!·[k == deriv].
struct Coeffs {
  int deriv = 0;                 ///< derivative order (1 or 2 here)
  std::vector<double> offsets;   ///< sample offsets in units of h
  std::vector<double> weights;   ///< weights for unit spacing

  [[nodiscard]] int npoints() const { return static_cast<int>(weights.size()); }

  /// Sum of |w_i|; enters the von Neumann stability bound.
  [[nodiscard]] double abs_sum() const;
};

/// Centred weights for the `deriv`-th derivative (deriv in {1,2}) at accuracy
/// order `space_order` (even, >= 2). Uses 2r+1 points with r = space_order/2
/// for deriv==2 and the same radius for deriv==1 (the classic FD choice used
/// by Devito for wave kernels).
[[nodiscard]] Coeffs central(int deriv, int space_order);

/// First-derivative weights on a staggered grid: samples at half-integer
/// offsets -r+1/2, ..., r-1/2 (r = space_order/2), evaluating the derivative
/// at the integer point. This is the Virieux velocity–stress layout.
[[nodiscard]] Coeffs staggered_first(int space_order);

/// Weights for an arbitrary offset set (general Fornberg-style generation);
/// exposed for tests and for experimenting with asymmetric stencils.
[[nodiscard]] Coeffs for_offsets(int deriv, std::vector<double> offsets);

/// Stencil radius (points of halo needed per side) for a given space order.
[[nodiscard]] constexpr int radius_for_order(int space_order) {
  return space_order / 2;
}

}  // namespace tempest::stencil
