#pragma once

namespace tempest::stencil {

/// Courant–Friedrichs–Lewy timestep selection for explicit wave kernels.
///
/// For the second-order-in-time acoustic update with a Laplacian whose 1-D
/// second-derivative weights have absolute sum S, the von Neumann bound on a
/// 3-D grid with uniform spacing h and maximum velocity c_max is
///     dt <= 2 h / (c_max * sqrt(3 S)).
/// `safety` (in (0,1]) derates the bound; the paper's setups use the Devito
/// default of ~0.9 relative headroom which we mirror.
[[nodiscard]] double acoustic_dt(double h, double c_max, int space_order,
                                 double safety = 0.9);

/// Timestep for the first-order velocity–stress elastic system with
/// staggered first derivatives of absolute weight sum S1:
///     dt <= h / (v_p_max * sqrt(3) * S1) * safety.
[[nodiscard]] double elastic_dt(double h, double vp_max, int space_order,
                                double safety = 0.9);

/// TTI shares the acoustic bound but the rotated/anisotropic operator is
/// stiffer; apply an extra anisotropy factor sqrt(1 + 2*max(eps, delta)).
[[nodiscard]] double tti_dt(double h, double c_max, int space_order,
                            double max_eps, double max_delta,
                            double safety = 0.9);

/// Number of steps to propagate `time_ms` milliseconds at timestep dt_ms.
[[nodiscard]] int steps_for(double time_ms, double dt_ms);

}  // namespace tempest::stencil
