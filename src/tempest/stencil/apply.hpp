#pragma once

#include <cstddef>

#include "tempest/grid/grid3.hpp"
#include "tempest/stencil/coefficients.hpp"

namespace tempest::stencil {

/// Runtime-radius stencil application helpers.
///
/// These are the *reference* implementations used by tests, the DSL
/// interpreter and the naive propagator variants. The optimized propagators
/// in physics/ hand-roll the same arithmetic with compile-time radii; tests
/// assert both paths agree to rounding.

/// d²f/dx_dim² at interior point (x,y,z) with unit-spacing weights `c`
/// (divide by h² at the call site). dim: 0=x, 1=y, 2=z.
template <typename T>
[[nodiscard]] double second_deriv(const grid::Grid3<T>& f, const Coeffs& c,
                                  int dim, int x, int y, int z) {
  double acc = 0.0;
  const int r = (c.npoints() - 1) / 2;
  for (int i = -r; i <= r; ++i) {
    const double w = c.weights[static_cast<std::size_t>(i + r)];
    switch (dim) {
      case 0: acc += w * static_cast<double>(f(x + i, y, z)); break;
      case 1: acc += w * static_cast<double>(f(x, y + i, z)); break;
      default: acc += w * static_cast<double>(f(x, y, z + i)); break;
    }
  }
  return acc;
}

/// First derivative along `dim` with centred weights (unit spacing).
template <typename T>
[[nodiscard]] double first_deriv(const grid::Grid3<T>& f, const Coeffs& c,
                                 int dim, int x, int y, int z) {
  return second_deriv(f, c, dim, x, y, z);  // same gather, different weights
}

/// Mixed second derivative d²f/(dxi dxj) via the tensor product of two
/// centred first-derivative stencils (the cross stencil that makes rotated
/// TTI Laplacians so expensive). Requires i != j.
template <typename T>
[[nodiscard]] double cross_deriv(const grid::Grid3<T>& f, const Coeffs& c1,
                                 int dim_i, int dim_j, int x, int y, int z) {
  const int r = (c1.npoints() - 1) / 2;
  double acc = 0.0;
  for (int a = -r; a <= r; ++a) {
    const double wa = c1.weights[static_cast<std::size_t>(a + r)];
    if (wa == 0.0) continue;
    for (int b = -r; b <= r; ++b) {
      const double wb = c1.weights[static_cast<std::size_t>(b + r)];
      if (wb == 0.0) continue;
      int dx = 0, dy = 0, dz = 0;
      (dim_i == 0 ? dx : dim_i == 1 ? dy : dz) += a;
      (dim_j == 0 ? dx : dim_j == 1 ? dy : dz) += b;
      acc += wa * wb * static_cast<double>(f(x + dx, y + dy, z + dz));
    }
  }
  return acc;
}

/// Isotropic Laplacian with uniform spacing h in all three dimensions.
template <typename T>
[[nodiscard]] double laplacian(const grid::Grid3<T>& f, const Coeffs& c2,
                               double h, int x, int y, int z) {
  const double inv_h2 = 1.0 / (h * h);
  return inv_h2 * (second_deriv(f, c2, 0, x, y, z) +
                   second_deriv(f, c2, 1, x, y, z) +
                   second_deriv(f, c2, 2, x, y, z));
}

/// Staggered first derivative: weights at half-offsets; `shift` selects
/// whether the result lives at the +1/2 (shift=1) or -1/2 (shift=0) points
/// relative to f's grid along `dim`. Used by the elastic kernels.
template <typename T>
[[nodiscard]] double staggered_deriv(const grid::Grid3<T>& f, const Coeffs& c,
                                     int dim, int shift, int x, int y, int z) {
  const int n = c.npoints();
  const int r = n / 2;
  double acc = 0.0;
  for (int i = 0; i < n; ++i) {
    // offsets are -r+1/2 .. r-1/2; as integer sample index relative to the
    // evaluation point: i - r + shift.
    const int o = i - r + shift;
    const double w = c.weights[static_cast<std::size_t>(i)];
    switch (dim) {
      case 0: acc += w * static_cast<double>(f(x + o, y, z)); break;
      case 1: acc += w * static_cast<double>(f(x, y + o, z)); break;
      default: acc += w * static_cast<double>(f(x, y, z + o)); break;
    }
  }
  return acc;
}

}  // namespace tempest::stencil
