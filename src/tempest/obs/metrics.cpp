#include "tempest/obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <vector>

namespace tempest::obs {

namespace {

/// Per-thread histogram shard. The recording thread is the only writer;
/// `mu` serialises its writes against the serial-phase snapshot that merges
/// them. The uncontended lock costs tens of nanoseconds per record — noise
/// next to the block of work the duration describes.
struct Shard {
  std::array<Histogram, kNumMetrics> hist;
  std::mutex mu;
};

/// Registry of every thread that ever recorded; exited threads' shards are
/// merged into `retired` on snapshot, exactly like the trace registry, so
/// short-lived pool workers cannot grow the registry or lose samples.
struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<Shard>> shards;
  std::array<Histogram, kNumMetrics> retired;
};

Registry& registry() {
  static Registry r;
  return r;
}

/// Caller holds r.mu.
void compact_locked(Registry& r) {
  auto dead_begin = std::partition(
      r.shards.begin(), r.shards.end(),
      [](const std::shared_ptr<Shard>& s) { return s.use_count() > 1; });
  for (auto it = dead_begin; it != r.shards.end(); ++it) {
    Shard& s = **it;
    const std::lock_guard<std::mutex> shard_lock(s.mu);
    for (int m = 0; m < kNumMetrics; ++m) {
      r.retired[static_cast<std::size_t>(m)].merge(
          s.hist[static_cast<std::size_t>(m)]);
    }
  }
  r.shards.erase(dead_begin, r.shards.end());
}

Shard& local_shard() {
  thread_local std::shared_ptr<Shard> shard = [] {
    auto s = std::make_shared<Shard>();
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    r.shards.push_back(s);
    return s;
  }();
  return *shard;
}

std::atomic<bool> g_enabled{false};

}  // namespace

const char* to_string(Metric m) {
  switch (m) {
    case Metric::TileSeconds: return "tile_seconds";
    case Metric::SubstepSeconds: return "substep_seconds";
    case Metric::BandSeconds: return "band_seconds";
    case Metric::ShotSeconds: return "shot_seconds";
    case Metric::JitCompileSeconds: return "jit_compile_seconds";
    case Metric::CheckpointWriteSeconds: return "checkpoint_write_seconds";
  }
  return "?";
}

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

void record_ns(Metric m, std::int64_t ns) {
  if (!enabled()) return;
  Shard& s = local_shard();
  const std::lock_guard<std::mutex> lock(s.mu);
  s.hist[static_cast<std::size_t>(m)].record(ns);
}

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

MetricSnapshot snapshot_metrics() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  compact_locked(r);
  MetricSnapshot out = r.retired;
  for (const auto& s : r.shards) {
    const std::lock_guard<std::mutex> shard_lock(s->mu);
    for (int m = 0; m < kNumMetrics; ++m) {
      out[static_cast<std::size_t>(m)].merge(
          s->hist[static_cast<std::size_t>(m)]);
    }
  }
  return out;
}

Histogram metric_histogram(Metric m) {
  return snapshot_metrics()[static_cast<std::size_t>(m)];
}

void reset_metrics() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& s : r.shards) {
    const std::lock_guard<std::mutex> shard_lock(s->mu);
    for (auto& h : s->hist) h.clear();
  }
  for (auto& h : r.retired) h.clear();
}

}  // namespace tempest::obs
