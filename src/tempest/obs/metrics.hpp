#pragma once

#include <array>
#include <cstdint>

#include "tempest/obs/histogram.hpp"

namespace tempest::obs {

/// The runtime's latency distributions. Every metric is a Histogram of
/// nanosecond durations with the shared fixed bucket layout, accumulated in
/// per-thread shards and merged on snapshot — so the aggregate is invariant
/// under thread count and merge order (only the wall-clock values themselves
/// vary run to run).
///
///   TileSeconds            one space block handed to a kernel (all schedules)
///   SubstepSeconds         one whole-domain substep sweep (barrier schedules)
///   BandSeconds            one time band (temporal blocking) / one full
///                          timestep including callbacks (barrier schedules)
///   ShotSeconds            one winning shot attempt (time loop + precompute)
///   JitCompileSeconds      one codegen::JitModule compile+load
///   CheckpointWriteSeconds one resilience::Checkpointer::save
enum class Metric : int {
  TileSeconds = 0,
  SubstepSeconds,
  BandSeconds,
  ShotSeconds,
  JitCompileSeconds,
  CheckpointWriteSeconds,
};
inline constexpr int kNumMetrics = 6;

/// OpenMetrics-safe base name ("tile_seconds", ...).
[[nodiscard]] const char* to_string(Metric m);

/// Global runtime switch, independent of trace::enabled(). Off by default;
/// when off, record_ns() is one relaxed load + branch.
[[nodiscard]] bool enabled();
void set_enabled(bool on);

/// Record one duration into metric `m` on this thread's shard (no-op while
/// disabled).
void record_ns(Metric m, std::int64_t ns);

/// Monotonic nanosecond clock shared by all obs timing (steady_clock).
[[nodiscard]] std::int64_t now_ns();

/// Merged view of every metric across all threads (including threads that
/// have since exited — their shards are folded into retired accumulators,
/// exactly like the trace registry). Call from serial code.
using MetricSnapshot = std::array<Histogram, kNumMetrics>;
[[nodiscard]] MetricSnapshot snapshot_metrics();
[[nodiscard]] Histogram metric_histogram(Metric m);

/// Zero every shard on every thread.
void reset_metrics();

/// RAII duration: records [construction, destruction) into `m` when the
/// metrics runtime is enabled. Prefer the TEMPEST_OBS_TIME macro, which
/// compiles out under TEMPEST_TRACE_DISABLED.
class ScopedLatency {
 public:
  explicit ScopedLatency(Metric m)
      : m_(m), active_(enabled()), start_(active_ ? now_ns() : 0) {}
  ~ScopedLatency() {
    if (active_) record_ns(m_, now_ns() - start_);
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  Metric m_;
  bool active_;
  std::int64_t start_;
};

}  // namespace tempest::obs

#define TEMPEST_OBS_CONCAT_IMPL(a, b) a##b
#define TEMPEST_OBS_CONCAT(a, b) TEMPEST_OBS_CONCAT_IMPL(a, b)

// Instrumentation macros: compiled out together with the trace macros under
// -DTEMPEST_TRACE=OFF, so an un-instrumented build carries zero obs cost.
#if defined(TEMPEST_TRACE_DISABLED)
#define TEMPEST_OBS_TIME(metric) ((void)0)
#define TEMPEST_OBS_RECORD_NS(metric, ns) ((void)0)
#else
#define TEMPEST_OBS_TIME(metric)                                           \
  ::tempest::obs::ScopedLatency TEMPEST_OBS_CONCAT(tempest_obs_latency_,   \
                                                   __LINE__)(              \
      ::tempest::obs::Metric::metric)
#define TEMPEST_OBS_RECORD_NS(metric, ns)                                  \
  ::tempest::obs::record_ns(::tempest::obs::Metric::metric,                \
                            static_cast<std::int64_t>(ns))
#endif
