#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

namespace tempest::obs {

/// Log-linear latency histogram with a *fixed* bucket layout.
///
/// The layout is a compile-time constant of the format (not of the data):
/// every histogram ever constructed has exactly the same kNumBuckets
/// boundaries, so merging two histograms is element-wise integer addition —
/// associative, commutative, and therefore invariant under how a sample set
/// was partitioned across threads or shots. This is the same discipline the
/// engine applies to its work counters (PR 7's bit-stability): aggregation
/// order can never change an aggregate.
///
/// Bucket layout (HdrHistogram-style base-2 log-linear):
///   * values 0 .. 15 land in exact singleton buckets (index == value);
///   * beyond that, each power-of-two octave [2^e, 2^(e+1)) is split into
///     kSubCount = 8 equal linear sub-buckets, so the relative width of any
///     bucket is at most 2^-3 = 12.5%.
/// Values are non-negative int64 (negative records clamp to 0); the metrics
/// registry stores nanoseconds, but the structure is unit-agnostic.
///
/// Quantile rule (the one jobs::report documents and pins in tests):
/// quantile(q) returns the *inclusive upper bound* of the first bucket whose
/// cumulative count reaches ceil(q * N), clamped to the observed [min, max].
/// It is a nearest-rank estimate with a deterministic upward bias of less
/// than one bucket width (<= 12.5% relative), and it depends only on the
/// bucket counts — so any two equal histograms agree on every quantile.
class Histogram {
 public:
  static constexpr int kSubBits = 3;
  static constexpr int kSubCount = 1 << kSubBits;  // 8 sub-buckets per octave
  /// Octaves e = kSubBits .. 62 plus the 2*kSubCount singleton buckets.
  static constexpr int kNumBuckets = (62 - kSubBits + 1) * kSubCount + 8;

  /// Bucket index of value `v` (clamped to >= 0). Monotone in `v`.
  [[nodiscard]] static constexpr int bucket_index(std::int64_t v) noexcept {
    if (v < 2 * kSubCount) return v < 0 ? 0 : static_cast<int>(v);
    const int e = 63 - std::countl_zero(static_cast<std::uint64_t>(v));
    const int shift = e - kSubBits;
    const int sub = static_cast<int>(
        (static_cast<std::uint64_t>(v) >> shift) & (kSubCount - 1));
    return ((e - kSubBits + 1) << kSubBits) + sub;
  }

  /// Smallest value mapping to bucket `index`.
  [[nodiscard]] static constexpr std::int64_t bucket_lower(int index) noexcept {
    if (index < 2 * kSubCount) return index;
    const int top = index >> kSubBits;   // >= 2
    const int sub = index & (kSubCount - 1);
    const int scale = top - 1;
    return static_cast<std::int64_t>(kSubCount + sub) << scale;
  }

  /// Largest value mapping to bucket `index` (inclusive).
  [[nodiscard]] static constexpr std::int64_t bucket_upper(int index) noexcept {
    if (index < 2 * kSubCount) return index;
    const int scale = (index >> kSubBits) - 1;
    return bucket_lower(index) + (std::int64_t{1} << scale) - 1;
  }

  constexpr void record(std::int64_t v) noexcept { record_n(v, 1); }

  constexpr void record_n(std::int64_t v, std::uint64_t n) noexcept {
    if (n == 0) return;
    if (v < 0) v = 0;
    buckets_[static_cast<std::size_t>(bucket_index(v))] += n;
    count_ += n;
    sum_ += v * static_cast<std::int64_t>(n);
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }

  /// Element-wise addition: associative and commutative, so the merged
  /// result is independent of thread count and merge order.
  constexpr void merge(const Histogram& other) noexcept {
    for (int i = 0; i < kNumBuckets; ++i) {
      buckets_[static_cast<std::size_t>(i)] +=
          other.buckets_[static_cast<std::size_t>(i)];
    }
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  constexpr void clear() noexcept { *this = Histogram{}; }

  [[nodiscard]] constexpr std::uint64_t count() const noexcept {
    return count_;
  }
  [[nodiscard]] constexpr std::int64_t sum() const noexcept { return sum_; }
  [[nodiscard]] constexpr std::int64_t min() const noexcept {
    return count_ == 0 ? 0 : min_;
  }
  [[nodiscard]] constexpr std::int64_t max() const noexcept { return max_; }
  [[nodiscard]] constexpr std::uint64_t bucket_count(int index) const noexcept {
    return buckets_[static_cast<std::size_t>(index)];
  }

  /// See the class comment for the exact rule. q outside [0, 1] clamps.
  [[nodiscard]] std::int64_t quantile(double q) const noexcept {
    if (count_ == 0) return 0;
    q = std::clamp(q, 0.0, 1.0);
    const auto rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(q * static_cast<double>(count_))));
    std::uint64_t cum = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
      cum += buckets_[static_cast<std::size_t>(i)];
      if (cum >= rank) return std::clamp(bucket_upper(i), min_, max_);
    }
    return max_;
  }

  [[nodiscard]] bool operator==(const Histogram&) const = default;

 private:
  std::array<std::uint64_t, kNumBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = std::numeric_limits<std::int64_t>::max();
  std::int64_t max_ = 0;
};

}  // namespace tempest::obs
