#pragma once

#include <iosfwd>
#include <string>

namespace tempest::perf::pmu {
struct Sample;
}

namespace tempest::obs {

/// OpenMetrics / Prometheus textfile exposition of the runtime's telemetry:
/// the trace work counters as monotonic counters, the obs latency metrics
/// as histograms (cumulative le-buckets in seconds), and optionally a PMU
/// sample as gauges. Metric names are a stable contract:
///
///   tempest_<counter>_total            e.g. tempest_cells_updated_total
///   tempest_<metric>{_bucket,_sum,_count}
///                                      e.g. tempest_shot_seconds_bucket
///                                      (metric base names already carry
///                                      the _seconds unit suffix)
///   tempest_pmu_<event>                e.g. tempest_pmu_cycles
///
/// Bucket boundaries come from the shared fixed Histogram layout, so the
/// exported buckets are invariant under thread count and merge order. Only
/// non-empty buckets are listed (plus the mandatory +Inf); cumulative
/// counts are non-decreasing by construction. The output is a valid
/// OpenMetrics text exposition ending in `# EOF`, suitable for the
/// node_exporter textfile collector or any Prometheus scrape relay.
struct OpenMetricsOptions {
  const perf::pmu::Sample* pmu = nullptr;  ///< non-null: emit PMU gauges
  bool counters = true;                    ///< trace counter totals
  bool metrics = true;                     ///< latency histograms
};

void write_openmetrics(std::ostream& os, const OpenMetricsOptions& opts = {});

/// Write to `path`; returns false when the file cannot be written.
bool write_openmetrics(const std::string& path,
                       const OpenMetricsOptions& opts = {});

}  // namespace tempest::obs
