#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace tempest::obs {

/// Flight recorder ("black box"): a crash-persistent ring of compact binary
/// event records backed by an mmap'd file, so the last moments of a shot
/// survive SIGKILL, watchdog bark, or quarantine — the failure modes in
/// which the in-memory trace buffers are lost.
///
/// ## The .tfbr format (magic "TFBR", version 1)
///
///   header   4096 bytes: geometry + CRC-protected fixed fields, plus the
///            two mutable cursors (global sequence, name count)
///   names    name_capacity x 64-byte entries {u32 len, char bytes[60]}:
///            an append-only intern table of event-name literals
///   lanes    n_lanes x (64-byte lane header {u64 cursor} +
///            lane_capacity x 64-byte slots)
///
/// Every slot is independently CRC-framed (crc32 over its first 60 bytes,
/// the same polynomial as the TPJL journal): a reader trusts a slot iff its
/// CRC matches, so the record being written at the instant of death — at
/// most one per lane — decodes as "torn" and is skipped, never
/// misinterpreted. Recovery rules, in order:
///   * header CRC mismatch or impossible geometry: the file is not a black
///     box (io::CorruptFileError);
///   * a torn slot (bad CRC / zero seq) is skipped; more torn slots than
///     lanes means interior corruption, and verify_blackbox() fails;
///   * duplicate sequence numbers among valid slots: interior corruption;
///   * `header.seq - valid - torn` records were overwritten by ring wrap —
///     expected, reported, never an error.
///
/// ## Write path
///
/// Each thread claims a lane (round-robin at first use) and bumps the
/// lane's monotonic cursor with a relaxed fetch_add; slot = cursor mod
/// capacity. After the first use of a given name on a given thread the hot
/// path is wait-free: two relaxed fetch_adds, ~60 bytes of stores and a
/// 60-byte CRC into pages the kernel persists even if the process is
/// SIGKILL'd mid-store (durability is by construction of MAP_SHARED: dirty
/// page-cache pages belong to the file, not the process).
class FlightRecorder {
 public:
  /// Ring geometry. Defaults hold the last ~4k events (~280 KiB per shot).
  struct Options {
    std::uint32_t lanes = 16;          ///< concurrent writer lanes
    std::uint32_t lane_capacity = 256; ///< slots per lane (ring length)
    std::uint32_t name_capacity = 256; ///< interned event names
    std::uint32_t shot = 0;            ///< tag recorded in the header
  };

  /// Map a fresh black box at `path` (truncating any previous one). Returns
  /// nullptr when the file cannot be created or mapped — a recorder is an
  /// observer, never a reason to fail the shot.
  [[nodiscard]] static std::unique_ptr<FlightRecorder> create(
      const std::string& path, const Options& opts);

  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Append one event. `name` must have static storage duration (call-site
  /// literals — the intern table keys on the pointer).
  void record(std::uint16_t kind, const char* name, std::int64_t a,
              std::int64_t b);

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  FlightRecorder() = default;
  std::uint16_t intern(const char* name);

  std::string path_;
  unsigned char* map_ = nullptr;
  std::size_t map_bytes_ = 0;
  Options opts_{};
  std::int64_t epoch_ns_ = 0;
  std::uint64_t generation_ = 0;  ///< invalidates thread-local lane caches
  std::atomic<std::uint32_t> next_tid_{0};  ///< round-robin lane assignment
  std::mutex names_mu_;
  std::unordered_map<const void*, std::uint16_t> name_ids_;
};

/// Record kinds (the `kind` field of a slot).
inline constexpr std::uint16_t kSpanEnter = 1;  ///< a = span arg, b = has_arg
inline constexpr std::uint16_t kSpanExit = 2;   ///< a = duration ns
inline constexpr std::uint16_t kCounterDelta = 3;  ///< a = delta
inline constexpr std::uint16_t kHealth = 4;  ///< a = bit-cast max|u|, b = step
inline constexpr std::uint16_t kJobState = 5;  ///< a = shot, b = level
inline constexpr std::uint16_t kMark = 6;      ///< free-form

[[nodiscard]] const char* kind_name(std::uint16_t kind);

/// Install `r` as the process-wide black box: span enter/exit and counter
/// deltas flow in through the trace event tap, health samples and job state
/// transitions through the note_* feeds below. Serial code only; uninstall
/// before destroying the recorder.
void install_blackbox(FlightRecorder* r);
void uninstall_blackbox();
[[nodiscard]] FlightRecorder* installed_blackbox();

/// Feed a health-monitor sample / job state transition to the installed
/// black box (no-op when none is installed).
void note_health(const char* field, int step, double max_abs);
void note_job_state(const char* state, int shot, int level);

/// One decoded slot.
struct BlackboxEvent {
  std::uint64_t seq = 0;
  std::int64_t ts_ns = 0;  ///< since recorder creation
  std::uint16_t kind = 0;
  std::string name;
  std::uint32_t tid = 0;
  std::int64_t a = 0;
  std::int64_t b = 0;
};

struct BlackboxContents {
  FlightRecorder::Options geom;
  std::uint64_t total_recorded = 0;  ///< header seq: includes overwritten
  std::uint32_t torn_slots = 0;      ///< CRC-failed slots (mid-write at death)
  std::vector<BlackboxEvent> events; ///< CRC-clean survivors, seq-ascending
  std::vector<std::string> open_spans;  ///< entered but never exited,
                                        ///< outermost first
};

/// Decode `path`. Throws io::CorruptFileError when the header is not a
/// valid TFBR v1 header; torn slots are tolerated per the recovery rules.
[[nodiscard]] BlackboxContents read_blackbox(const std::string& path);

/// Post-mortem integrity check: header valid, every surviving slot CRC-clean
/// with unique sequence numbers, and no more torn slots than writer lanes.
/// Returns false (with a diagnostic in *error, when non-null) otherwise.
[[nodiscard]] bool verify_blackbox(const std::string& path,
                                   std::string* error = nullptr);

}  // namespace tempest::obs

// Call-site macro for the health feed, compiled out with the trace macros.
#if defined(TEMPEST_TRACE_DISABLED)
#define TEMPEST_OBS_HEALTH(field, step, value) ((void)0)
#else
#define TEMPEST_OBS_HEALTH(field, step, value) \
  ::tempest::obs::note_health((field), (step), (value))
#endif
