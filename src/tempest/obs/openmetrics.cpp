#include "tempest/obs/openmetrics.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>

#include "tempest/obs/metrics.hpp"
#include "tempest/perf/pmu.hpp"
#include "tempest/trace/trace.hpp"

namespace tempest::obs {

namespace {

/// Shortest-roundtrip double, the same discipline as util::JsonWriter: the
/// emitted text is part of the byte-identity contract, so formatting must
/// be deterministic.
void write_double(std::ostream& os, double v, const char* fmt) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  os << buf;
}

void write_histogram(std::ostream& os, const char* name, const char* help,
                     const Histogram& h) {
  os << "# TYPE tempest_" << name << " histogram\n";
  os << "# UNIT tempest_" << name << " seconds\n";
  os << "# HELP tempest_" << name << " " << help << "\n";
  // Cumulative le-buckets over the fixed layout; skipping empty buckets
  // keeps the exposition small without changing any cumulative count.
  std::uint64_t cum = 0;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    const std::uint64_t n = h.bucket_count(i);
    if (n == 0) continue;
    cum += n;
    os << "tempest_" << name << "_bucket{le=\"";
    write_double(os, static_cast<double>(Histogram::bucket_upper(i)) / 1e9,
                 "%.9g");
    os << "\"} " << cum << "\n";
  }
  os << "tempest_" << name << "_bucket{le=\"+Inf\"} " << h.count() << "\n";
  os << "tempest_" << name << "_sum ";
  write_double(os, static_cast<double>(h.sum()) / 1e9, "%.17g");
  os << "\n";
  os << "tempest_" << name << "_count " << h.count() << "\n";
}

}  // namespace

void write_openmetrics(std::ostream& os, const OpenMetricsOptions& opts) {
  if (opts.counters) {
    const trace::CounterSnapshot counters = trace::snapshot();
    for (int c = 0; c < trace::kNumCounters; ++c) {
      const char* name = trace::to_string(static_cast<trace::Counter>(c));
      os << "# TYPE tempest_" << name << " counter\n";
      os << "# HELP tempest_" << name
         << " Monotonic work counter from tempest::trace.\n";
      os << "tempest_" << name << "_total "
         << counters[static_cast<std::size_t>(c)] << "\n";
    }
  }
  if (opts.metrics) {
    const MetricSnapshot snap = snapshot_metrics();
    for (int m = 0; m < kNumMetrics; ++m) {
      write_histogram(os, to_string(static_cast<Metric>(m)),
                      "Latency distribution from tempest::obs.",
                      snap[static_cast<std::size_t>(m)]);
    }
  }
  if (opts.pmu != nullptr) {
    for (int e = 0; e < perf::pmu::kNumEvents; ++e) {
      const auto ev = static_cast<perf::pmu::Event>(e);
      if (!opts.pmu->valid(ev)) continue;
      const char* name = perf::pmu::to_string(ev);
      os << "# TYPE tempest_pmu_" << name << " gauge\n";
      os << "# HELP tempest_pmu_" << name
         << " Hardware counter delta over the run (perf_event_open).\n";
      os << "tempest_pmu_" << name << " " << (*opts.pmu)[ev] << "\n";
    }
  }
  os << "# EOF\n";
}

bool write_openmetrics(const std::string& path,
                       const OpenMetricsOptions& opts) {
  std::ofstream os(path);
  if (!os) return false;
  write_openmetrics(os, opts);
  return static_cast<bool>(os);
}

}  // namespace tempest::obs
