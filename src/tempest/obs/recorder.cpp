#include "tempest/obs/recorder.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstring>
#include <fstream>
#include <iterator>
#include <map>

#include "tempest/io/io.hpp"
#include "tempest/trace/trace.hpp"
#include "tempest/util/crc32.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>
#define TEMPEST_OBS_HAVE_MMAP 1
#endif

namespace tempest::obs {

namespace {

// On-disk layout of a .tfbr v1 file. Every struct below is its wire
// format: fixed-width little-endian fields at fixed offsets, asserted so a
// layout drift fails the build instead of corrupting black boxes.
constexpr std::uint32_t kMagic = 0x52424654u;  // "TFBR" little-endian
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 4096;
constexpr std::uint32_t kSlotBytes = 64;
constexpr std::size_t kNameEntryBytes = 64;
constexpr std::size_t kNameTextBytes = kNameEntryBytes - sizeof(std::uint32_t);
constexpr std::size_t kLaneHeaderBytes = 64;
constexpr std::size_t kCrcCoveredHeaderBytes = 28;  // fields before header_crc

struct Header {
  std::uint32_t magic;
  std::uint32_t version;
  std::uint32_t lanes;
  std::uint32_t lane_capacity;
  std::uint32_t slot_bytes;
  std::uint32_t name_capacity;
  std::uint32_t shot;
  std::uint32_t header_crc;  ///< crc32 over the 28 bytes above
  std::uint64_t seq;         ///< next-sequence counter (== total recorded)
  std::uint32_t name_count;
};
static_assert(offsetof(Header, header_crc) == kCrcCoveredHeaderBytes);
static_assert(offsetof(Header, seq) == 32);
static_assert(offsetof(Header, name_count) == 40);

struct NameEntry {
  std::uint32_t len;
  char text[kNameTextBytes];
};
static_assert(sizeof(NameEntry) == kNameEntryBytes);

struct Slot {
  std::uint64_t seq;      ///< 0: never written
  std::int64_t ts_ns;
  std::int64_t a;
  std::int64_t b;
  std::uint32_t tid;
  std::uint16_t kind;
  std::uint16_t name_id;
  unsigned char pad[20];
  std::uint32_t crc;      ///< crc32 over the 60 bytes above, stored last
};
static_assert(sizeof(Slot) == kSlotBytes);
static_assert(offsetof(Slot, crc) == 60);

constexpr std::size_t names_offset() { return kHeaderBytes; }

std::size_t lanes_offset(const FlightRecorder::Options& g) {
  return kHeaderBytes + std::size_t{g.name_capacity} * kNameEntryBytes;
}

std::size_t lane_stride(const FlightRecorder::Options& g) {
  return kLaneHeaderBytes + std::size_t{g.lane_capacity} * kSlotBytes;
}

std::size_t file_bytes(const FlightRecorder::Options& g) {
  return lanes_offset(g) + std::size_t{g.lanes} * lane_stride(g);
}

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Per-thread, per-recorder cache: lane assignment plus interned name ids.
/// The generation check makes a stale cache (from a previous shot's
/// recorder) invalidate itself without any cross-thread coordination.
struct ThreadCache {
  std::uint64_t generation = 0;
  std::uint32_t lane = 0;
  std::uint32_t tid = 0;
  std::unordered_map<const void*, std::uint16_t> names;
};

ThreadCache& local_cache() {
  thread_local ThreadCache c;
  return c;
}

std::atomic<std::uint64_t> g_generation{0};

}  // namespace

std::unique_ptr<FlightRecorder> FlightRecorder::create(const std::string& path,
                                                       const Options& opts) {
#if defined(TEMPEST_OBS_HAVE_MMAP)
  Options g = opts;
  g.lanes = std::clamp<std::uint32_t>(g.lanes, 1, 1024);
  g.lane_capacity = std::clamp<std::uint32_t>(g.lane_capacity, 8, 1u << 20);
  g.name_capacity = std::clamp<std::uint32_t>(g.name_capacity, 8, 1u << 16);
  const std::size_t total = file_bytes(g);

  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return nullptr;
  if (::ftruncate(fd, static_cast<off_t>(total)) != 0) {
    ::close(fd);
    return nullptr;
  }
  void* map = ::mmap(nullptr, total, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps the file's pages alive
  if (map == MAP_FAILED) return nullptr;

  auto rec = std::unique_ptr<FlightRecorder>(new FlightRecorder());
  rec->path_ = path;
  rec->map_ = static_cast<unsigned char*>(map);
  rec->map_bytes_ = total;
  rec->opts_ = g;
  rec->epoch_ns_ = steady_ns();
  rec->generation_ = 1 + g_generation.fetch_add(1, std::memory_order_relaxed);

  Header h{};
  h.magic = kMagic;
  h.version = kVersion;
  h.lanes = g.lanes;
  h.lane_capacity = g.lane_capacity;
  h.slot_bytes = kSlotBytes;
  h.name_capacity = g.name_capacity;
  h.shot = g.shot;
  h.header_crc = util::crc32(&h, kCrcCoveredHeaderBytes);
  std::memcpy(rec->map_, &h, sizeof(h));

  // Name id 0 is the overflow name: interning past name_capacity degrades
  // to "?" instead of dropping events.
  static const char kOverflowName[] = "?";
  rec->intern(kOverflowName);
  return rec;
#else
  (void)path;
  (void)opts;
  return nullptr;
#endif
}

FlightRecorder::~FlightRecorder() {
#if defined(TEMPEST_OBS_HAVE_MMAP)
  if (map_ != nullptr) ::munmap(map_, map_bytes_);
#endif
}

std::uint16_t FlightRecorder::intern(const char* name) {
  const std::lock_guard<std::mutex> lock(names_mu_);
  const auto it = name_ids_.find(name);
  if (it != name_ids_.end()) return it->second;
  auto* header = reinterpret_cast<Header*>(map_);
  const std::atomic_ref<std::uint32_t> count_ref(header->name_count);
  const std::uint32_t id = count_ref.load(std::memory_order_relaxed);
  if (id >= opts_.name_capacity) return 0;  // table full: overflow name
  auto* entry = reinterpret_cast<NameEntry*>(map_ + names_offset() +
                                             std::size_t{id} * kNameEntryBytes);
  const std::size_t len = std::min(std::strlen(name), kNameTextBytes);
  std::memcpy(entry->text, name, len);
  entry->len = static_cast<std::uint32_t>(len);
  count_ref.store(id + 1, std::memory_order_release);
  name_ids_.emplace(name, static_cast<std::uint16_t>(id));
  return static_cast<std::uint16_t>(id);
}

void FlightRecorder::record(std::uint16_t kind, const char* name,
                            std::int64_t a, std::int64_t b) {
  if (map_ == nullptr) return;
  ThreadCache& tc = local_cache();
  if (tc.generation != generation_) {
    tc.generation = generation_;
    tc.tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
    tc.lane = tc.tid % opts_.lanes;
    tc.names.clear();
  }
  std::uint16_t name_id;
  const auto it = tc.names.find(name);
  if (it != tc.names.end()) {
    name_id = it->second;
  } else {
    name_id = intern(name);
    tc.names.emplace(name, name_id);
  }

  auto* header = reinterpret_cast<Header*>(map_);
  const std::uint64_t seq =
      1 + std::atomic_ref<std::uint64_t>(header->seq)
              .fetch_add(1, std::memory_order_relaxed);

  unsigned char* lane = map_ + lanes_offset(opts_) + tc.lane * lane_stride(opts_);
  const std::uint64_t cursor =
      std::atomic_ref<std::uint64_t>(*reinterpret_cast<std::uint64_t*>(lane))
          .fetch_add(1, std::memory_order_relaxed);
  auto* slot = reinterpret_cast<Slot*>(
      lane + kLaneHeaderBytes + (cursor % opts_.lane_capacity) * kSlotBytes);

  slot->seq = seq;
  slot->ts_ns = steady_ns() - epoch_ns_;
  slot->a = a;
  slot->b = b;
  slot->tid = tc.tid;
  slot->kind = kind;
  slot->name_id = name_id;
  std::memset(slot->pad, 0, sizeof(slot->pad));
  // The release store keeps the CRC from being reordered before the field
  // stores: a reader (or a post-SIGKILL decoder) that sees a matching CRC
  // sees the fields it covers.
  std::atomic_ref<std::uint32_t>(slot->crc).store(
      util::crc32(slot, offsetof(Slot, crc)), std::memory_order_release);
}

const char* kind_name(std::uint16_t kind) {
  switch (kind) {
    case kSpanEnter: return "span_enter";
    case kSpanExit: return "span_exit";
    case kCounterDelta: return "counter";
    case kHealth: return "health";
    case kJobState: return "job_state";
    case kMark: return "mark";
  }
  return "?";
}

namespace {

std::atomic<FlightRecorder*> g_blackbox{nullptr};

void tap_span_enter(void*, const char* name, const char*, std::int64_t arg,
                    bool has_arg) {
  FlightRecorder* r = g_blackbox.load(std::memory_order_acquire);
  if (r != nullptr) r->record(kSpanEnter, name, arg, has_arg ? 1 : 0);
}

void tap_span_exit(void*, const char* name, std::int64_t, std::int64_t dur_ns) {
  FlightRecorder* r = g_blackbox.load(std::memory_order_acquire);
  if (r != nullptr) r->record(kSpanExit, name, dur_ns, 0);
}

void tap_counter(void*, trace::Counter c, long long delta) {
  FlightRecorder* r = g_blackbox.load(std::memory_order_acquire);
  if (r != nullptr) r->record(kCounterDelta, trace::to_string(c), delta, 0);
}

const trace::EventTap kBlackboxTap{nullptr, tap_span_enter, tap_span_exit,
                                   tap_counter};

}  // namespace

void install_blackbox(FlightRecorder* r) {
  g_blackbox.store(r, std::memory_order_release);
  trace::set_event_tap(r != nullptr ? &kBlackboxTap : nullptr);
}

void uninstall_blackbox() {
  trace::set_event_tap(nullptr);
  g_blackbox.store(nullptr, std::memory_order_release);
}

FlightRecorder* installed_blackbox() {
  return g_blackbox.load(std::memory_order_acquire);
}

void note_health(const char* field, int step, double max_abs) {
  FlightRecorder* r = g_blackbox.load(std::memory_order_acquire);
  if (r != nullptr) {
    r->record(kHealth, field, std::bit_cast<std::int64_t>(max_abs), step);
  }
}

void note_job_state(const char* state, int shot, int level) {
  FlightRecorder* r = g_blackbox.load(std::memory_order_acquire);
  if (r != nullptr) r->record(kJobState, state, shot, level);
}

namespace {

/// Decode guts: header + geometry validation, slot CRC triage, seq sort,
/// open-span replay. Throws io::CorruptFileError per the header contract.
BlackboxContents decode(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw io::CorruptFileError(path, "cannot open black box");
  std::vector<unsigned char> bytes((std::istreambuf_iterator<char>(is)),
                                   std::istreambuf_iterator<char>());
  if (bytes.size() < kHeaderBytes) {
    throw io::CorruptFileError(path, "black box shorter than its header");
  }

  Header h{};
  std::memcpy(&h, bytes.data(), sizeof(h));
  if (h.magic != kMagic) throw io::CorruptFileError(path, "bad TFBR magic");
  if (h.version != kVersion) {
    throw io::CorruptFileError(
        path, "unsupported TFBR version " + std::to_string(h.version));
  }
  if (h.header_crc != util::crc32(bytes.data(), kCrcCoveredHeaderBytes)) {
    throw io::CorruptFileError(path, "TFBR header CRC mismatch");
  }
  if (h.slot_bytes != kSlotBytes || h.lanes == 0 || h.lanes > 1024 ||
      h.lane_capacity == 0 || h.lane_capacity > (1u << 20) ||
      h.name_capacity == 0 || h.name_capacity > (1u << 16)) {
    throw io::CorruptFileError(path, "implausible TFBR geometry");
  }
  FlightRecorder::Options g;
  g.lanes = h.lanes;
  g.lane_capacity = h.lane_capacity;
  g.name_capacity = h.name_capacity;
  g.shot = h.shot;
  if (bytes.size() != file_bytes(g)) {
    throw io::CorruptFileError(
        path, "TFBR size does not match its geometry (" +
                  std::to_string(bytes.size()) + " != " +
                  std::to_string(file_bytes(g)) + " bytes)");
  }

  std::vector<std::string> names;
  const std::uint32_t n_names = std::min(h.name_count, h.name_capacity);
  names.reserve(n_names);
  for (std::uint32_t i = 0; i < n_names; ++i) {
    NameEntry e{};
    std::memcpy(&e, bytes.data() + names_offset() + i * kNameEntryBytes,
                sizeof(e));
    names.emplace_back(e.text, std::min<std::size_t>(e.len, kNameTextBytes));
  }

  BlackboxContents out;
  out.geom = g;
  out.total_recorded = h.seq;
  for (std::uint32_t lane = 0; lane < g.lanes; ++lane) {
    const unsigned char* base =
        bytes.data() + lanes_offset(g) + lane * lane_stride(g);
    for (std::uint32_t i = 0; i < g.lane_capacity; ++i) {
      Slot s{};
      std::memcpy(&s, base + kLaneHeaderBytes + i * kSlotBytes, sizeof(s));
      if (s.seq == 0) continue;  // never written
      if (s.crc != util::crc32(&s, offsetof(Slot, crc))) {
        ++out.torn_slots;  // the record in flight at death
        continue;
      }
      BlackboxEvent ev;
      ev.seq = s.seq;
      ev.ts_ns = s.ts_ns;
      ev.kind = s.kind;
      ev.name = s.name_id < names.size() ? names[s.name_id] : "?";
      ev.tid = s.tid;
      ev.a = s.a;
      ev.b = s.b;
      out.events.push_back(std::move(ev));
    }
  }
  std::sort(out.events.begin(), out.events.end(),
            [](const BlackboxEvent& a, const BlackboxEvent& b) {
              return a.seq < b.seq;
            });
  for (std::size_t i = 1; i < out.events.size(); ++i) {
    if (out.events[i].seq == out.events[i - 1].seq) {
      throw io::CorruptFileError(
          path, "duplicate TFBR sequence number " +
                    std::to_string(out.events[i].seq));
    }
  }

  // Open spans at death: replay the surviving tail per thread. Enters whose
  // exit was overwritten by ring wrap would look open forever, so an exit
  // with no matching enter (wrap) simply clears nothing; leftovers on each
  // stack are the spans genuinely entered and never exited.
  std::map<std::uint32_t, std::vector<std::string>> stacks;
  for (const BlackboxEvent& ev : out.events) {
    auto& stack = stacks[ev.tid];
    if (ev.kind == kSpanEnter) {
      stack.push_back(ev.name);
    } else if (ev.kind == kSpanExit) {
      const auto it = std::find(stack.rbegin(), stack.rend(), ev.name);
      if (it != stack.rend()) stack.erase(std::next(it).base());
    }
  }
  for (const auto& [tid, stack] : stacks) {
    out.open_spans.insert(out.open_spans.end(), stack.begin(), stack.end());
  }
  return out;
}

}  // namespace

BlackboxContents read_blackbox(const std::string& path) {
  return decode(path);
}

bool verify_blackbox(const std::string& path, std::string* error) {
  try {
    const BlackboxContents c = decode(path);
    if (c.torn_slots > c.geom.lanes) {
      if (error != nullptr) {
        *error = std::to_string(c.torn_slots) + " torn slots exceeds " +
                 std::to_string(c.geom.lanes) + " writer lanes";
      }
      return false;
    }
  } catch (const std::exception& e) {
    if (error != nullptr) *error = e.what();
    return false;
  }
  if (error != nullptr) error->clear();
  return true;
}

}  // namespace tempest::obs
