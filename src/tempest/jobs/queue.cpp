#include "tempest/jobs/queue.hpp"

#include <sstream>

#include "tempest/util/error.hpp"
#include "tempest/util/log.hpp"

namespace tempest::jobs {

JobQueue::JobQueue(std::string journal_path, std::uint64_t plan_fingerprint,
                   int n_jobs)
    : journal_(std::move(journal_path)) {
  TEMPEST_REQUIRE(n_jobs > 0);
  jobs_.resize(static_cast<std::size_t>(n_jobs));

  if (!journal_.exists()) {
    Record plan;
    plan.type = RecordType::Plan;
    plan.job = n_jobs;
    plan.fingerprint = plan_fingerprint;
    journal_.append(plan);
    return;
  }

  bool torn = false;
  const std::vector<Record> history = journal_.replay(&torn);
  if (history.empty() || history.front().type != RecordType::Plan) {
    throw JournalMismatchError("journal '" + journal_.path() +
                               "' has no plan record — not a tempest survey "
                               "journal, refusing to reuse it");
  }
  const Record& plan = history.front();
  if (plan.fingerprint != plan_fingerprint || plan.job != n_jobs) {
    std::ostringstream os;
    os << "journal '" << journal_.path() << "' belongs to a different survey "
       << "(fingerprint " << std::hex << plan.fingerprint << ", "
       << std::dec << plan.job << " jobs; this run is " << std::hex
       << plan_fingerprint << std::dec << ", " << n_jobs
       << " jobs) — delete the jobs directory to start fresh";
    throw JournalMismatchError(os.str());
  }
  for (std::size_t i = 1; i < history.size(); ++i) apply(history[i]);
  if (torn) {
    util::warn("journal '" + journal_.path() +
               "' has a torn final record (crash mid-append); compacting "
               "the intact prefix");
    journal_.rewrite(history);
  }

  // A job still Running in the replayed history was in flight when the
  // previous process died. Hand it back to the executor as Pending, flagged
  // so it knows a mid-shot checkpoint may exist.
  for (JobInfo& j : jobs_) {
    if (j.state == JobState::Running) {
      j.state = JobState::Pending;
      j.interrupted = true;
      recovered_ = true;
    }
  }
}

int JobQueue::next_pending() const {
  for (int i = 0; i < n_jobs(); ++i) {
    if (jobs_[static_cast<std::size_t>(i)].state == JobState::Pending) {
      return i;
    }
  }
  return -1;
}

bool JobQueue::all_done() const {
  for (const JobInfo& j : jobs_) {
    if (j.state != JobState::Done && j.state != JobState::Quarantined) {
      return false;
    }
  }
  return true;
}

int JobQueue::count(JobState s) const {
  int n = 0;
  for (const JobInfo& j : jobs_) n += (j.state == s) ? 1 : 0;
  return n;
}

void JobQueue::mark_started(int job, int attempt, int level) {
  Record r;
  r.type = RecordType::Started;
  r.job = job;
  r.attempt = attempt;
  r.level = level;
  append_and_apply(r);
}

void JobQueue::mark_done(int job, double seconds, int level, bool degraded,
                         const std::string& detail) {
  Record r;
  r.type = RecordType::Done;
  r.job = job;
  r.level = level;
  r.attempt = degraded ? 1 : 0;  // Done.attempt doubles as the degraded flag
  r.seconds = seconds;
  r.detail = detail;
  append_and_apply(r);
}

void JobQueue::mark_transient(int job, int attempt,
                              const std::string& detail) {
  Record r;
  r.type = RecordType::Transient;
  r.job = job;
  r.attempt = attempt;
  r.detail = detail;
  append_and_apply(r);
}

void JobQueue::mark_degraded(int job, int new_level,
                             const std::string& detail) {
  Record r;
  r.type = RecordType::Degraded;
  r.job = job;
  r.level = new_level;
  r.detail = detail;
  append_and_apply(r);
}

void JobQueue::mark_quarantined(int job, const std::string& detail) {
  Record r;
  r.type = RecordType::Quarantined;
  r.job = job;
  r.detail = detail;
  append_and_apply(r);
}

void JobQueue::append_and_apply(const Record& r) {
  TEMPEST_REQUIRE_MSG(r.job >= 0 && r.job < n_jobs(),
                      "journal record for job outside the plan");
  journal_.append(r);  // disk first: the WAL invariant
  apply(r);
}

void JobQueue::apply(const Record& r) {
  if (r.job < 0 || r.job >= n_jobs()) return;  // tolerate foreign replay rows
  JobInfo& j = jobs_[static_cast<std::size_t>(r.job)];
  switch (r.type) {
    case RecordType::Plan:
      break;
    case RecordType::Started:
      j.state = JobState::Running;
      j.attempts += 1;
      j.level = r.level;
      j.interrupted = false;
      break;
    case RecordType::Done:
      j.state = JobState::Done;
      j.level = r.level;
      j.degraded = j.degraded || r.attempt != 0;
      j.seconds = r.seconds;
      j.detail = r.detail;
      break;
    case RecordType::Transient:
      j.state = JobState::Pending;
      j.detail = r.detail;
      break;
    case RecordType::Degraded:
      j.state = JobState::Pending;
      j.level = r.level;
      j.degraded = true;
      j.detail = r.detail;
      break;
    case RecordType::Quarantined:
      j.state = JobState::Quarantined;
      j.detail = r.detail;
      break;
  }
}

}  // namespace tempest::jobs
