#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tempest::jobs {

/// One entry in the survey write-ahead journal. Every state transition a
/// job makes is appended *before* the transition's effects are acted on, so
/// a crash at any instant leaves a prefix of the true history on disk and
/// replaying that prefix reconstructs the queue exactly.
enum class RecordType : std::uint32_t {
  Plan = 1,        ///< first record: run fingerprint + job count
  Started = 2,     ///< job picked up (attempt, ladder level)
  Done = 3,        ///< job finished; seconds + final level in the record
  Transient = 4,   ///< attempt failed with a retryable fault
  Degraded = 5,    ///< job stepped down the degradation ladder
  Quarantined = 6, ///< permanent failure: never retried, diagnostics kept
};

[[nodiscard]] constexpr const char* to_string(RecordType t) {
  switch (t) {
    case RecordType::Plan: return "plan";
    case RecordType::Started: return "started";
    case RecordType::Done: return "done";
    case RecordType::Transient: return "transient";
    case RecordType::Degraded: return "degraded";
    case RecordType::Quarantined: return "quarantined";
  }
  return "?";
}

struct Record {
  RecordType type = RecordType::Started;
  std::int32_t job = -1;           ///< job index; -1 for Plan
  std::int32_t attempt = 0;        ///< 1-based attempt number at this level
  std::int32_t level = 0;          ///< degradation-ladder level (0 = requested)
  std::uint64_t fingerprint = 0;   ///< Plan: run config; others: unused
  double seconds = 0.0;            ///< Done: wall-clock of the winning attempt
  std::string detail;              ///< human-readable diagnostics

  [[nodiscard]] bool operator==(const Record&) const = default;
};

/// Append-only, CRC-framed journal file.
///
/// Layout: an 8-byte header {magic "TPJL", version}, then one frame per
/// record: {u32 payload_len, u32 crc32(payload), payload}. Every append is
/// flushed before returning, so the journal never claims a transition that
/// was not durably recorded. replay() accepts a torn tail — a final frame
/// cut short or failing its CRC is exactly what a kill mid-append leaves
/// behind — and reports it so the owner can compact. A corrupted *interior*
/// frame (bit rot, not a torn write) aborts replay with
/// io::CorruptFileError: the history after it cannot be trusted.
class Journal {
 public:
  explicit Journal(std::string path) : path_(std::move(path)) {}

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] bool exists() const;

  /// Durably append one record (creates the file + header on first use).
  /// Throws util::PreconditionError on I/O failure.
  void append(const Record& r);

  /// Read every intact record. A torn final frame is tolerated and sets
  /// *torn_tail (may be null); throws io::CorruptFileError on a bad
  /// header or a corrupt frame that is not the last one.
  [[nodiscard]] std::vector<Record> replay(bool* torn_tail = nullptr) const;

  /// Rewrite the journal to contain exactly `records`, via tmp + atomic
  /// rename — the recovery path after a torn tail, and the compaction path
  /// when the history outgrows its usefulness.
  void rewrite(const std::vector<Record>& records) const;

  void remove() const;

 private:
  std::string path_;
};

}  // namespace tempest::jobs
