#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tempest/jobs/report.hpp"
#include "tempest/physics/propagator.hpp"
#include "tempest/util/backoff.hpp"

namespace tempest::jobs {

/// Everything that defines a multi-shot survey run. The fingerprint of the
/// physics-relevant fields gates journal and checkpoint reuse: a resumed
/// run with different flags is rejected, never silently blended.
struct SurveySpec {
  int n = 64;           ///< cubic grid edge
  int nt = 80;          ///< timesteps per shot
  int n_shots = 3;
  int space_order = 8;
  std::string physics = "acoustic";  ///< acoustic | tti | vti | elastic
  physics::Schedule schedule = physics::Schedule::Wavefront;  ///< rung 0

  /// Start the ladder with a JIT-compiled generated kernel (acoustic only):
  /// the generated C operator is compiled and loaded before the shot runs,
  /// so a broken toolchain surfaces as a retryable JitCompileError and —
  /// when retries exhaust — degrades the shot to the AOT rung instead of
  /// failing the survey.
  bool use_jit = false;

  std::string jobs_dir = "survey_jobs";  ///< journal + checkpoints + gathers
  int ckpt_every = 20;     ///< checkpoint cadence on barrier rungs (steps)
  int health_every = 8;    ///< NaN/blow-up scan cadence (0 = off)
  double watchdog_ms = 0.0;  ///< per-step deadline on barrier rungs (0 = off)

  /// Shot retry policy; run_survey() applies $TEMPEST_JOB_RETRIES /
  /// $TEMPEST_JOB_RETRY_BASE_MS on top (environment wins).
  util::BackoffPolicy retry{};

  std::string survey_json;  ///< BENCH_survey.json path ("" = skip)

  /// Observability (tempest::obs). When on, every attempt runs under a
  /// crash-persistent flight recorder at <jobs_dir>/blackbox/shot_<k>.tfbr
  /// (retained on degrade/quarantine, recycled on success), the latency
  /// histograms are collected survey-wide, and the report uses the v2
  /// schema. Off — or in a TEMPEST_TRACE=OFF build, which compiles the
  /// whole layer out — the survey behaves and serializes exactly as v1.
  bool obs = true;
  std::string openmetrics;  ///< OpenMetrics textfile path ("" = skip)
};

/// The live black box of shot `shot` while an attempt is running (and the
/// file a SIGKILL leaves behind): <jobs_dir>/blackbox/shot_<k>.tfbr.
[[nodiscard]] std::string blackbox_live_path(const SurveySpec& spec,
                                             int shot);

/// One rung of the survey degradation ladder: a schedule, optionally with
/// the JIT-compiled kernel in front of it.
struct SurveyRung {
  physics::Schedule sched = physics::Schedule::Reference;
  bool jit = false;
  std::string name;
};

/// The ladder for a requested schedule: the requested rung first (twice
/// when `use_jit` — JIT then AOT), then space-blocked, then reference,
/// without duplicates. Every shot starts at rung 0 and steps down on
/// degrade-class failures.
[[nodiscard]] std::vector<SurveyRung> degradation_ladder(
    physics::Schedule requested, bool use_jit);

/// Order-sensitive hash of every spec field a resumed run must match.
[[nodiscard]] std::uint64_t survey_fingerprint(const SurveySpec& spec);

/// Final gather of shot `k`: <jobs_dir>/shot_<k>.tpg, written atomically
/// (tmp + rename) before the shot's Done record is journaled.
[[nodiscard]] std::string shot_gather_path(const SurveySpec& spec, int shot);

/// Run (or resume) the survey described by `spec`. Creates jobs_dir,
/// replays its journal when one exists, re-enters interrupted shots from
/// their mid-shot checkpoints (barrier rungs) or from scratch (temporally
/// blocked rungs — deterministic, so the gathers still match bitwise), and
/// drives every shot to Done or Quarantined under the retry/degradation
/// policy. On full success the journal and checkpoints are removed; the
/// gathers and the report remain.
SurveyReport run_survey(const SurveySpec& spec);

}  // namespace tempest::jobs
