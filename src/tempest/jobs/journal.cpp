#include "tempest/jobs/journal.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "tempest/io/io.hpp"
#include "tempest/util/crc32.hpp"
#include "tempest/util/error.hpp"

namespace tempest::jobs {

namespace {

constexpr std::uint32_t kMagic = 0x54504A4Cu;  // "TPJL"
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kMaxPayload = 1u << 20;  // sanity bound per record

void put_pod(std::vector<std::uint8_t>& out, const void* p, std::size_t n) {
  const auto* b = static_cast<const std::uint8_t*>(p);
  out.insert(out.end(), b, b + n);
}

template <typename T>
void put(std::vector<std::uint8_t>& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  put_pod(out, &v, sizeof(T));
}

std::vector<std::uint8_t> encode(const Record& r) {
  std::vector<std::uint8_t> payload;
  payload.reserve(40 + r.detail.size());
  put(payload, static_cast<std::uint32_t>(r.type));
  put(payload, r.job);
  put(payload, r.attempt);
  put(payload, r.level);
  put(payload, r.fingerprint);
  put(payload, r.seconds);
  put(payload, static_cast<std::uint32_t>(r.detail.size()));
  put_pod(payload, r.detail.data(), r.detail.size());
  return payload;
}

Record decode(const std::string& path, const std::uint8_t* p, std::size_t n) {
  constexpr std::size_t kFixed = 4 + 4 + 4 + 4 + 8 + 8 + 4;
  if (n < kFixed) {
    throw io::CorruptFileError(path, "journal record payload too short (" +
                                         std::to_string(n) + " bytes)");
  }
  Record r;
  std::uint32_t type = 0;
  std::uint32_t detail_len = 0;
  std::size_t off = 0;
  const auto get = [&](void* dst, std::size_t sz) {
    std::memcpy(dst, p + off, sz);
    off += sz;
  };
  get(&type, sizeof(type));
  get(&r.job, sizeof(r.job));
  get(&r.attempt, sizeof(r.attempt));
  get(&r.level, sizeof(r.level));
  get(&r.fingerprint, sizeof(r.fingerprint));
  get(&r.seconds, sizeof(r.seconds));
  get(&detail_len, sizeof(detail_len));
  if (type < static_cast<std::uint32_t>(RecordType::Plan) ||
      type > static_cast<std::uint32_t>(RecordType::Quarantined)) {
    throw io::CorruptFileError(
        path, "journal record type " + std::to_string(type) + " unknown");
  }
  r.type = static_cast<RecordType>(type);
  if (off + detail_len != n) {
    throw io::CorruptFileError(
        path, "journal record detail length " + std::to_string(detail_len) +
                  " disagrees with its frame (" + std::to_string(n - off) +
                  " bytes remain)");
  }
  r.detail.assign(reinterpret_cast<const char*>(p) + off, detail_len);
  return r;
}

void write_frames(std::ofstream& out, const std::vector<Record>& records) {
  for (const Record& r : records) {
    const std::vector<std::uint8_t> payload = encode(r);
    const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
    const std::uint32_t crc = util::crc32(payload.data(), payload.size());
    out.write(reinterpret_cast<const char*>(&len), sizeof(len));
    out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
    out.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
  }
}

}  // namespace

bool Journal::exists() const {
  std::error_code ec;
  return std::filesystem::exists(path_, ec);
}

void Journal::append(const Record& r) {
  const bool fresh = !exists();
  std::ofstream out(path_, std::ios::binary | std::ios::app);
  TEMPEST_REQUIRE_MSG(out.good(), "cannot open journal '" + path_ +
                                      "' for append");
  if (fresh) {
    out.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
    out.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
  }
  write_frames(out, {r});
  out.flush();
  TEMPEST_REQUIRE_MSG(out.good(),
                      "journal append to '" + path_ + "' failed (disk full?)");
}

std::vector<Record> Journal::replay(bool* torn_tail) const {
  if (torn_tail != nullptr) *torn_tail = false;
  std::ifstream in(path_, std::ios::binary);
  if (!in.good()) {
    throw io::CorruptFileError(path_, "cannot open journal");
  }
  std::vector<std::uint8_t> buf((std::istreambuf_iterator<char>(in)),
                                std::istreambuf_iterator<char>());
  if (buf.size() < 8) {
    throw io::CorruptFileError(path_, "journal shorter than its header (" +
                                          std::to_string(buf.size()) +
                                          " bytes)");
  }
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::memcpy(&magic, buf.data(), sizeof(magic));
  std::memcpy(&version, buf.data() + 4, sizeof(version));
  if (magic != kMagic) {
    throw io::CorruptFileError(path_, "bad journal magic");
  }
  if (version != kVersion) {
    throw io::CorruptFileError(
        path_, "journal version " + std::to_string(version) +
                   ", this build reads version " + std::to_string(kVersion));
  }

  std::vector<Record> records;
  std::size_t off = 8;
  while (off < buf.size()) {
    // A frame cut anywhere — mid-length, mid-crc, mid-payload — or whose
    // CRC fails is a torn tail if and only if nothing follows it.
    std::uint32_t len = 0;
    std::uint32_t crc = 0;
    const bool short_header = off + 8 > buf.size();
    bool bad = short_header;
    if (!bad) {
      std::memcpy(&len, buf.data() + off, sizeof(len));
      std::memcpy(&crc, buf.data() + off + 4, sizeof(crc));
      bad = len > kMaxPayload || off + 8 + len > buf.size() ||
            util::crc32(buf.data() + off + 8, len) != crc;
    }
    if (bad) {
      // A torn append always ends the file: the frame is cut short, or its
      // trailing bytes never made it. A frame that fails its CRC but has
      // *more data after it* is interior corruption — the history beyond it
      // cannot be trusted, so refuse rather than resync.
      if (!short_header && off + 8 + len < buf.size()) {
        throw io::CorruptFileError(
            path_, "journal record at byte " + std::to_string(off) +
                       " fails its CRC but is not the final record");
      }
      if (torn_tail != nullptr) *torn_tail = true;
      break;
    }
    records.push_back(decode(path_, buf.data() + off + 8, len));
    off += 8 + len;
  }
  return records;
}

void Journal::rewrite(const std::vector<Record>& records) const {
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    TEMPEST_REQUIRE_MSG(out.good(), "cannot open '" + tmp + "' for write");
    out.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
    out.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
    write_frames(out, records);
    out.flush();
    TEMPEST_REQUIRE_MSG(out.good(), "journal rewrite to '" + tmp +
                                        "' failed (disk full?)");
  }
  TEMPEST_REQUIRE_MSG(std::rename(tmp.c_str(), path_.c_str()) == 0,
                      "cannot commit journal rewrite to '" + path_ + "'");
}

void Journal::remove() const {
  std::remove(path_.c_str());
  std::remove((path_ + ".tmp").c_str());
}

}  // namespace tempest::jobs
