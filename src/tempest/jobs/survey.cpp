#include "tempest/jobs/survey.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <memory>

#include "tempest/codegen/emit.hpp"
#include "tempest/codegen/jit.hpp"
#include "tempest/io/io.hpp"
#include "tempest/jobs/runner.hpp"
#include "tempest/jobs/watchdog.hpp"
#include "tempest/obs/metrics.hpp"
#include "tempest/obs/openmetrics.hpp"
#include "tempest/obs/recorder.hpp"
#include "tempest/physics/acoustic.hpp"
#include "tempest/physics/elastic.hpp"
#include "tempest/physics/tti.hpp"
#include "tempest/physics/vti.hpp"
#include "tempest/resilience/checkpoint.hpp"
#include "tempest/resilience/fault.hpp"
#include "tempest/sparse/survey.hpp"
#include "tempest/sparse/wavelet.hpp"
#include "tempest/util/log.hpp"
#include "tempest/util/timer.hpp"

namespace tempest::jobs {

namespace {

using physics::Schedule;

/// Versioned framing of the per-shot checkpoint aux blob (see
/// resilience::aux_pack_versioned): magic "TPSS", layout version 1. Bump
/// the version when ShotAux changes layout — an old blob is then rejected
/// as a typed io::CorruptFileError instead of being reinterpreted.
constexpr std::uint32_t kShotAuxMagic = 0x54505353u;  // "TPSS"
constexpr std::uint32_t kShotAuxVersion = 1;
constexpr const char* kShotAuxName = "shot-state";

/// Which attempt wrote the checkpoint. The per-shot checkpoint fingerprint
/// already encodes shot/level/schedule; this blob carries the same facts
/// readably so a mismatch diagnoses itself (and exercises the versioned
/// framing end to end).
struct ShotAux {
  std::int32_t shot = 0;
  std::int32_t level = 0;
  std::int32_t sched = 0;
  std::int32_t jit = 0;
};

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string shot_ckpt_path(const SurveySpec& spec, int shot) {
  return spec.jobs_dir + "/shot_" + std::to_string(shot) + ".tpck";
}

/// A checkpoint is only resumable by the exact (shot, rung) that wrote it:
/// resuming a wavefront shot's state under the space-blocked rung (or vice
/// versa) would splice two schedules' rounding histories into one gather.
std::uint64_t shot_fingerprint(std::uint64_t base, int shot,
                               const SurveyRung& rung, int level) {
  resilience::Fingerprint fp;
  fp.add(base).add(shot).add(level).add(static_cast<int>(rung.sched));
  fp.add(rung.jit ? 1 : 0);
  return fp.value();
}

[[nodiscard]] bool is_barrier(Schedule s) {
  return s == Schedule::Reference || s == Schedule::SpaceBlocked;
}

#if !defined(TEMPEST_TRACE_DISABLED)
/// Arms the flight recorder around one attempt: a fresh (truncated) black
/// box under the live name, installed as the process-wide trace tap, with
/// job-state bookends. Destruction detects how the attempt ended — a
/// throw unwinding through the scope notes "attempt.fail" so the dead
/// shot's last record names its failure mode; the file itself is retained
/// or recycled later by the Runner outcome hook (and simply left behind
/// when the process is SIGKILL'd, which is the whole point).
class BlackboxScope {
 public:
  BlackboxScope(const SurveySpec& spec, const Attempt& a)
      : shot_(a.job), level_(a.level) {
    if (!spec.obs) return;
    obs::FlightRecorder::Options o;
    o.shot = static_cast<std::uint32_t>(a.job);
    rec_ = obs::FlightRecorder::create(blackbox_live_path(spec, a.job), o);
    if (rec_ != nullptr) {
      obs::install_blackbox(rec_.get());
      obs::note_job_state("attempt.start", a.job, a.level);
    }
  }
  ~BlackboxScope() {
    if (rec_ != nullptr) {
      obs::note_job_state(
          std::uncaught_exceptions() > 0 ? "attempt.fail" : "attempt.done",
          shot_, level_);
      obs::uninstall_blackbox();
    }
  }
  BlackboxScope(const BlackboxScope&) = delete;
  BlackboxScope& operator=(const BlackboxScope&) = delete;

 private:
  std::unique_ptr<obs::FlightRecorder> rec_;
  int shot_ = 0;
  int level_ = 0;
};

/// Runner outcome hook: success recycles the live black box, a degrade or
/// quarantine retains it under a name carrying the verdict (and the rung
/// it died on, for degrades — one kept file per failed rung). A transient
/// failure leaves the live file in place for the retry to truncate.
void retain_or_recycle_blackbox(const SurveySpec& spec, const Attempt& a,
                                const std::string& outcome) {
  const std::string live = blackbox_live_path(spec, a.job);
  std::error_code ec;
  if (outcome == "done") {
    std::filesystem::remove(live, ec);
  } else if (outcome == "degraded" || outcome == "quarantined") {
    std::string kept = spec.jobs_dir + "/blackbox/shot_" +
                       std::to_string(a.job) + "." + outcome;
    if (outcome == "degraded") kept += "_l" + std::to_string(a.level);
    kept += ".tfbr";
    std::filesystem::rename(live, kept, ec);
  }
}
#endif  // !TEMPEST_TRACE_DISABLED

/// One attempt of one shot, generic over the uniform propagator surface
/// (run/run_from/capture/restore). Throws on failure; the Runner's
/// classify() decides retry vs degrade vs quarantine.
template <typename Propagator, typename Model>
AttemptResult run_shot(const Model& model, const SurveySpec& spec,
                       const std::vector<SurveyRung>& ladder,
                       std::uint64_t base_fp, const Attempt& a) {
  const SurveyRung& rung = ladder.at(static_cast<std::size_t>(a.level));
#if !defined(TEMPEST_TRACE_DISABLED)
  const BlackboxScope blackbox(spec, a);
#endif
  const int n = spec.n;
  const int nt = spec.nt;
  const double dt = model.critical_dt();
  const auto wavelet = sparse::ricker(nt, dt, 0.008);

  // Shots march along x at 1/4 .. 3/4 of the line, off-the-grid.
  const double fx =
      0.25 + 0.5 * a.job / std::max(1, spec.n_shots - 1);
  sparse::SparseTimeSeries src(
      {{fx * (n - 1) + 0.37, 0.5 * (n - 1) + 0.61, 0.1 * (n - 1) + 0.43}},
      nt);
  src.broadcast_signature(wavelet);
  const sparse::CoordList rec_coords =
      sparse::receiver_carpet(model.geom.extents, 16, 8);
  sparse::SparseTimeSeries gather(rec_coords, nt);

  if (rung.jit) {
    // Compile + load the generated operator for this rung before any
    // propagation. A broken toolchain throws JitCompileError here —
    // transient, so the Runner retries with backoff and, once the budget
    // is spent, degrades the shot to the AOT rung below.
    codegen::KernelSpec kspec;
    kspec.space_order = spec.space_order;
    kspec.wavefront = rung.sched == Schedule::Wavefront;
    const codegen::JitModule compiled(codegen::emit_acoustic_c(kspec),
                                      kspec.symbol());
    TEMPEST_REQUIRE(compiled.symbol() != nullptr);
  }

  physics::PropagatorOptions opts;
  opts.tiles = core::TileSpec{8, 64, 64, 8, 8};
  opts.health.check_every = spec.health_every;
  Propagator prop(model, opts);

  const std::uint64_t fp = shot_fingerprint(base_fp, a.job, rung, a.level);
  resilience::Checkpointer ckpt(shot_ckpt_path(spec, a.job));
  const bool barrier = is_barrier(rung.sched);

  // Mid-shot resume (barrier rungs only — temporally blocked rungs have no
  // global barrier to checkpoint at, so an interrupted shot reruns from
  // scratch; both paths are deterministic, hence bit-identical gathers).
  int t_start = -1;
  if (barrier) {
    try {
      if (const auto resume = ckpt.try_load(fp)) {
        const auto* blob = resume->find_aux(kShotAuxName);
        if (blob == nullptr) {
          throw io::CorruptFileError(ckpt.path(),
                                     "shot checkpoint lacks its " +
                                         std::string(kShotAuxName) +
                                         " blob");
        }
        const auto aux = resilience::aux_unpack_versioned<ShotAux>(
            ckpt.path(), *blob, kShotAuxMagic, kShotAuxVersion);
        if (aux.shot == a.job && aux.level == a.level) {
          prop.restore(*resume);
          if (resume->has_rec) gather = resume->rec;
          t_start = resume->step;
          util::info("shot " + std::to_string(a.job) +
                     ": resuming from step " + std::to_string(t_start));
        } else {
          ckpt.remove_all();  // another attempt's leftovers
        }
      }
    } catch (const resilience::CheckpointMismatchError&) {
      // A different rung/config wrote it; it cannot seed this attempt.
      ckpt.remove_all();
    } catch (const io::CorruptFileError& e) {
      util::warn(std::string("discarding unusable shot checkpoint: ") +
                 e.what());
      ckpt.remove_all();
    }
  }

  Watchdog wd(barrier ? spec.watchdog_ms : 0.0, now_ms);
  const auto on_step = [&](int t) {
    wd.beat(t);
    if (spec.ckpt_every <= 0 || t % spec.ckpt_every != 0 || t >= nt) return;
    resilience::Checkpoint ck = prop.capture(t, fp, &gather);
    ShotAux aux;
    aux.shot = a.job;
    aux.level = a.level;
    aux.sched = static_cast<std::int32_t>(rung.sched);
    aux.jit = rung.jit ? 1 : 0;
    ck.aux.emplace_back(kShotAuxName,
                        resilience::aux_pack_versioned(kShotAuxMagic,
                                                       kShotAuxVersion, aux));
    try {
      ckpt.save(ck);
    } catch (const util::PreconditionError& e) {
      // A failed save is an environment problem (disk full, injected
      // fault), not a physics problem: retryable, and the rotated previous
      // checkpoint still covers the shot.
      throw util::TransientError(
          std::string("checkpoint save failed: ") + e.what());
    }
  };

  physics::RunStats stats;
  wd.start();
  if (barrier) {
    stats = t_start >= 0
                ? prop.run_from(t_start, rung.sched, src, &gather, on_step)
                : prop.run(rung.sched, src, &gather, on_step);
  } else {
    stats = prop.run(rung.sched, src, &gather);
  }

  // Commit the gather atomically *before* the Done record is journaled:
  // once the queue says done, the bytes are on disk under their final name.
  const std::string out = shot_gather_path(spec, a.job);
  const std::string tmp = out + ".tmp";
  io::save_gather(tmp, gather);
  if (std::rename(tmp.c_str(), out.c_str()) != 0) {
    throw util::TransientError("cannot commit gather to '" + out + "'");
  }
  ckpt.remove_all();

  AttemptResult res;
  res.seconds = stats.seconds + stats.precompute_seconds;
  res.detail = rung.name;
  TEMPEST_OBS_RECORD_NS(ShotSeconds, res.seconds * 1e9);
  return res;
}

std::vector<LadderRung> runner_ladder(const std::vector<SurveyRung>& rungs) {
  std::vector<LadderRung> out;
  out.reserve(rungs.size());
  for (const SurveyRung& r : rungs) out.push_back(LadderRung{r.name});
  return out;
}

template <typename Propagator, typename Model>
int drive(const Model& model, const SurveySpec& spec,
          const std::vector<SurveyRung>& ladder, std::uint64_t base_fp,
          JobQueue& queue, const util::BackoffPolicy& policy) {
  Runner runner(queue, runner_ladder(ladder), policy,
                [&](const Attempt& a) {
                  return run_shot<Propagator>(model, spec, ladder, base_fp,
                                              a);
                });
#if !defined(TEMPEST_TRACE_DISABLED)
  if (spec.obs) {
    runner.set_on_outcome([&spec](const Attempt& a, const char* outcome) {
      retain_or_recycle_blackbox(spec, a, outcome);
    });
  }
#endif
  return runner.run();
}

}  // namespace

std::vector<SurveyRung> degradation_ladder(Schedule requested, bool use_jit) {
  std::vector<SurveyRung> ladder;
  const auto push = [&](Schedule s, bool jit) {
    for (const SurveyRung& r : ladder) {
      if (r.sched == s && r.jit == jit) return;
    }
    SurveyRung rung;
    rung.sched = s;
    rung.jit = jit;
    rung.name = std::string(physics::to_string(s)) + (jit ? "+jit" : "");
    ladder.push_back(std::move(rung));
  };
  if (use_jit) push(requested, true);
  push(requested, false);
  push(Schedule::SpaceBlocked, false);
  push(Schedule::Reference, false);
  return ladder;
}

std::uint64_t survey_fingerprint(const SurveySpec& spec) {
  resilience::Fingerprint fp;
  for (const char c : spec.physics) fp.add(static_cast<int>(c));
  fp.add(spec.n).add(spec.nt).add(spec.n_shots).add(spec.space_order);
  fp.add(static_cast<int>(spec.schedule));
  fp.add(spec.use_jit ? 1 : 0);
  return fp.value();
}

std::string shot_gather_path(const SurveySpec& spec, int shot) {
  return spec.jobs_dir + "/shot_" + std::to_string(shot) + ".tpg";
}

std::string blackbox_live_path(const SurveySpec& spec, int shot) {
  return spec.jobs_dir + "/blackbox/shot_" + std::to_string(shot) + ".tfbr";
}

SurveyReport run_survey(const SurveySpec& spec) {
  TEMPEST_REQUIRE(spec.n_shots > 0 && spec.nt >= 2 && spec.n >= 8);
  // Let the chaos harness arm its kill point in a child it spawned.
  resilience::fault::arm_kill_from_env();
  std::filesystem::create_directories(spec.jobs_dir);

#if !defined(TEMPEST_TRACE_DISABLED)
  const bool obs_on = spec.obs;
  const bool obs_was_enabled = obs::enabled();
  if (obs_on) {
    std::filesystem::create_directories(spec.jobs_dir + "/blackbox");
    obs::reset_metrics();
    obs::set_enabled(true);
  }
#else
  const bool obs_on = false;
#endif

  const std::uint64_t base_fp = survey_fingerprint(spec);
  const bool jit_rung = spec.use_jit && spec.physics == "acoustic";
  const std::vector<SurveyRung> ladder =
      degradation_ladder(spec.schedule, jit_rung);
  JobQueue queue(spec.jobs_dir + "/journal.tpj", base_fp, spec.n_shots);
  if (queue.recovered()) {
    util::info("recovered a journal with interrupted shots; re-entering");
  }
  const util::BackoffPolicy policy =
      util::BackoffPolicy::from_env("TEMPEST_JOB", spec.retry);

  util::Timer total;
  const physics::Geometry geom{{spec.n, spec.n, spec.n}, 10.0,
                               spec.space_order, 10};
  if (spec.physics == "acoustic") {
    const physics::AcousticModel model =
        physics::make_acoustic_layered(geom, 1.5, 4.0, 6);
    drive<physics::AcousticPropagator>(model, spec, ladder, base_fp, queue,
                                       policy);
  } else if (spec.physics == "tti" || spec.physics == "vti") {
    physics::TTIModel model = physics::make_tti_layered(geom, 1.5, 4.0, 6);
    if (spec.physics == "vti") {
      model.theta.fill(0.0f);  // untilted: a genuine VTI medium
      model.phi.fill(0.0f);
    }
    if (spec.physics == "vti") {
      drive<physics::VTIPropagator>(model, spec, ladder, base_fp, queue,
                                    policy);
    } else {
      drive<physics::TTIPropagator>(model, spec, ladder, base_fp, queue,
                                    policy);
    }
  } else if (spec.physics == "elastic") {
    const physics::ElasticModel model =
        physics::make_elastic_layered(geom, 1.5, 4.0, 6);
    drive<physics::ElasticPropagator>(model, spec, ladder, base_fp, queue,
                                      policy);
  } else {
    TEMPEST_REQUIRE_MSG(false, "unknown physics '" + spec.physics +
                                   "' (expected acoustic, tti, vti or "
                                   "elastic)");
  }

  SurveyReport report;
  report.physics = spec.physics;
  report.requested_schedule = physics::to_string(spec.schedule);
  report.size = spec.n;
  report.steps = spec.nt;
  report.n_shots = spec.n_shots;
  report.recovered = queue.recovered();
  report.total_seconds = total.seconds();
  for (int i = 0; i < queue.n_jobs(); ++i) {
    const JobInfo& j = queue.job(i);
    ShotReport row;
    row.shot = i;
    row.state = to_string(j.state);
    row.attempts = j.attempts;
    row.level = j.level;
    row.level_name = ladder.at(static_cast<std::size_t>(j.level)).name;
    row.degraded = j.degraded;
    row.seconds = j.seconds;
    row.detail = j.detail;
    report.shots.push_back(std::move(row));
  }
  report.obs = obs_on;
#if !defined(TEMPEST_TRACE_DISABLED)
  if (obs_on) {
    report.latency = obs::snapshot_metrics();
    if (!spec.openmetrics.empty()) {
      obs::write_openmetrics(spec.openmetrics);
    }
    obs::set_enabled(obs_was_enabled);
  }
#endif
  finalize_aggregates(report);
  if (!spec.survey_json.empty()) {
    write_survey_json(spec.survey_json, report);
  }

  // The chaos harness sizes its kill plan from this: total progress ticks
  // of an uninterrupted run.
  {
    std::ofstream p(spec.jobs_dir + "/progress.txt", std::ios::trunc);
    p << resilience::fault::progress_count() << "\n";
  }

  // Only a fully successful survey retires its journal; quarantined shots
  // keep it (and their diagnostics) for the operator.
  if (report.done == spec.n_shots) {
    queue.remove_journal();
  }
  return report;
}

}  // namespace tempest::jobs
