#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tempest/util/cli.hpp"

namespace tempest::jobs {

/// Process-level primitives for the chaos harness (tools/chaos_runner and
/// the jobs_chaos test): spawn a survey worker as a real child process,
/// observe how it died, corrupt its files, and byte-compare its outputs.
/// Everything here is deterministic given the caller's fault plan — the
/// kill points come from a seeded RNG, not wall-clock timers.

struct ChildResult {
  int exit_code = -1;   ///< valid when !killed
  bool killed = false;  ///< terminated by a signal
  int signal = 0;       ///< the signal, when killed
};

/// fork/exec `argv` (argv[0] is the executable path) with `extra_env`
/// appended to the inherited environment ("KEY=VALUE" strings), wait for
/// it, and report how it ended. Throws util::PreconditionError when the
/// child cannot be spawned at all.
[[nodiscard]] ChildResult run_child(const std::vector<std::string>& argv,
                                    const std::vector<std::string>& extra_env);

/// Byte-wise file comparison (false on size mismatch or unreadable files).
[[nodiscard]] bool files_identical(const std::string& a,
                                   const std::string& b);

/// Flip one byte of `path` at `offset` (clamped into the file) — the
/// bit-rot injection that forces checkpoint rotation's CRC fallback.
/// Returns false when the file cannot be opened or is empty.
bool flip_byte(const std::string& path, std::uint64_t offset);

/// Read the progress-tick total a finished worker left in
/// <jobs_dir>/progress.txt; 0 when absent/unparseable.
[[nodiscard]] long read_progress_total(const std::string& jobs_dir);

/// One full kill/corrupt/resume experiment (the tentpole acceptance
/// criterion, shared by tools/chaos_runner and the jobs_chaos test):
///
///   1. Reference pass: the survey runs uninterrupted in `<root>/reference`;
///      its gathers are ground truth and its progress-tick total sizes the
///      kill plan.
///   2. Chaos pass in `<root>/chaos`: `kills` times, the worker is spawned
///      with $TEMPEST_CHAOS_KILL_AT armed at a seeded-random tick drawn from
///      the first chunk of the progress range (so every kill lands mid-run),
///      and SIGKILLs itself there. When `corrupt` is set, the newest .tpck
///      of shot 0 is bit-flipped after the middle kill to force checkpoint
///      rotation's CRC fallback.
///   3. A final unkilled restart must exit 0, and every shot gather must be
///      byte-identical to the reference pass.
struct ChaosSpec {
  std::vector<std::string> worker_args;  ///< survey flags (no --dir/--worker)
  std::string root = "chaos_jobs";       ///< scratch root; wiped at start
  int shots = 3;                         ///< must match --shots in worker_args
  int kills = 5;
  std::uint64_t seed = 7;
  bool corrupt = false;
};

/// Run the protocol above, spawning `self --worker ...` as a real child
/// process for every pass. Returns "" on bit-identical recovery (and then
/// removes the scratch root), else a human-readable diagnostic.
[[nodiscard]] std::string run_chaos(const ChaosSpec& spec,
                                    const std::string& self);

/// The worker half of the protocol, shared by every chaos host binary:
/// build a SurveySpec from --size/--steps/--shots/--so/--physics/
/// --schedule/--ckpt-every/--dir flags (test-scale defaults) and run the
/// survey. Returns the process exit code: 0 ok, 2 when any shot was
/// quarantined.
[[nodiscard]] int run_chaos_worker(const util::Cli& cli);

}  // namespace tempest::jobs
