#include "tempest/jobs/chaos.hpp"

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "tempest/jobs/survey.hpp"
#include "tempest/obs/recorder.hpp"
#include "tempest/util/error.hpp"
#include "tempest/util/log.hpp"
#include "tempest/util/rng.hpp"

extern char** environ;

namespace tempest::jobs {

ChildResult run_child(const std::vector<std::string>& argv,
                      const std::vector<std::string>& extra_env) {
  TEMPEST_REQUIRE(!argv.empty());
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& s : argv) {
    cargv.push_back(const_cast<char*>(s.c_str()));
  }
  cargv.push_back(nullptr);

  std::vector<char*> cenv;
  for (char** e = environ; e != nullptr && *e != nullptr; ++e) {
    cenv.push_back(*e);
  }
  for (const std::string& s : extra_env) {
    cenv.push_back(const_cast<char*>(s.c_str()));
  }
  cenv.push_back(nullptr);

  const pid_t pid = ::fork();
  TEMPEST_REQUIRE_MSG(pid >= 0, "fork() failed");
  if (pid == 0) {
    ::execve(cargv[0], cargv.data(), cenv.data());
    ::_exit(127);  // exec failed
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  ChildResult res;
  if (WIFSIGNALED(status)) {
    res.killed = true;
    res.signal = WTERMSIG(status);
  } else if (WIFEXITED(status)) {
    res.exit_code = WEXITSTATUS(status);
    TEMPEST_REQUIRE_MSG(res.exit_code != 127,
                        "cannot exec worker '" + argv[0] + "'");
  }
  return res;
}

bool files_identical(const std::string& a, const std::string& b) {
  std::ifstream fa(a, std::ios::binary);
  std::ifstream fb(b, std::ios::binary);
  if (!fa.good() || !fb.good()) return false;
  const std::vector<char> da((std::istreambuf_iterator<char>(fa)),
                             std::istreambuf_iterator<char>());
  const std::vector<char> db((std::istreambuf_iterator<char>(fb)),
                             std::istreambuf_iterator<char>());
  return da == db;
}

bool flip_byte(const std::string& path, std::uint64_t offset) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!f.good()) return false;
  f.seekg(0, std::ios::end);
  const auto size = static_cast<std::uint64_t>(f.tellg());
  if (size == 0) return false;
  const std::uint64_t at = offset % size;
  f.seekg(static_cast<std::streamoff>(at));
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x5A);
  f.seekp(static_cast<std::streamoff>(at));
  f.write(&c, 1);
  f.flush();
  return f.good();
}

long read_progress_total(const std::string& jobs_dir) {
  std::ifstream p(jobs_dir + "/progress.txt");
  long total = 0;
  if (p.good()) p >> total;
  return total;
}

namespace {

/// Spawn one worker pass of `self`; kill_at <= 0 leaves the kill disarmed.
ChildResult spawn_worker(const std::string& self,
                         const std::vector<std::string>& worker_args,
                         const std::string& dir, long kill_at) {
  std::vector<std::string> argv;
  argv.push_back(self);
  argv.push_back("--worker");
  for (const std::string& a : worker_args) argv.push_back(a);
  argv.push_back("--dir=" + dir);
  std::vector<std::string> env;
  if (kill_at > 0) {
    env.push_back("TEMPEST_CHAOS_KILL_AT=" + std::to_string(kill_at));
  }
  return run_child(argv, env);
}

#if !defined(TEMPEST_TRACE_DISABLED)
/// Every .tfbr the dead worker left behind must pass CRC verification, and
/// at least one must decode to a non-empty event stream (the victim shot's
/// final moments). Returns "" on success, a diagnostic otherwise.
std::string check_blackboxes(const std::string& blackbox_dir) {
  std::size_t boxes = 0;
  std::size_t with_events = 0;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(blackbox_dir, ec)) {
    if (entry.path().extension() != ".tfbr") continue;
    const std::string path = entry.path().string();
    boxes += 1;
    std::string err;
    if (!obs::verify_blackbox(path, &err)) {
      return "black box '" + path + "' failed verification: " + err;
    }
    if (!obs::read_blackbox(path).events.empty()) with_events += 1;
  }
  if (ec) return "cannot scan '" + blackbox_dir + "': " + ec.message();
  if (boxes == 0) {
    return "no black box left behind in '" + blackbox_dir + "'";
  }
  if (with_events == 0) {
    return "no black box in '" + blackbox_dir + "' holds any events";
  }
  util::info("chaos: " + std::to_string(boxes) +
             " black box(es) verified, " + std::to_string(with_events) +
             " with decodable events");
  return "";
}
#endif

}  // namespace

std::string run_chaos(const ChaosSpec& spec, const std::string& self) {
  const std::string ref_dir = spec.root + "/reference";
  const std::string chaos_dir = spec.root + "/chaos";
  std::filesystem::remove_all(spec.root);
  std::filesystem::create_directories(spec.root);

  // 1. Uninterrupted reference run.
  const ChildResult ref = spawn_worker(self, spec.worker_args, ref_dir, -1);
  if (ref.killed || ref.exit_code != 0) {
    return "chaos: reference run failed (exit " +
           std::to_string(ref.exit_code) + ")";
  }
  const long total_progress = read_progress_total(ref_dir);
  if (total_progress <= 0) {
    return "chaos: reference run left no progress total";
  }
  util::info("chaos: reference run complete, " +
             std::to_string(total_progress) + " progress ticks");

  // 2. Kill the chaos pass `kills` times at seeded points. Kill points are
  // drawn from the first chunk of the progress range so the survey cannot
  // finish before the kill budget is spent — every kill lands mid-run.
  util::SplitMix64 rng(spec.seed);
  const long chunk = std::max<long>(
      1, total_progress / static_cast<long>(spec.kills + 2));
  for (int k = 0; k < spec.kills; ++k) {
    const long kill_at =
        1 + static_cast<long>(rng.below(static_cast<std::uint64_t>(chunk)));
    const ChildResult r =
        spawn_worker(self, spec.worker_args, chaos_dir, kill_at);
    if (!r.killed) {
      // The worker got further than the armed tick needed — acceptable only
      // if it finished outright (counts as a wasted kill).
      util::info("chaos: kill " + std::to_string(k) + " at tick " +
                 std::to_string(kill_at) + " did not fire (worker exited " +
                 std::to_string(r.exit_code) + ")");
      continue;
    }
    util::info("chaos: kill " + std::to_string(k) + " fired at tick " +
               std::to_string(kill_at) + " (signal " +
               std::to_string(r.signal) + ")");
#if !defined(TEMPEST_TRACE_DISABLED)
    // Post-mortem contract: a SIGKILL'd worker must leave its victim
    // shot's flight recorder behind, CRC-verifiable and holding at least
    // one decodable record of the shot's final moments.
    {
      const std::string err = check_blackboxes(chaos_dir + "/blackbox");
      if (!err.empty()) {
        return "chaos: after kill " + std::to_string(k) + ": " + err;
      }
    }
#endif
    if (spec.corrupt && k == spec.kills / 2) {
      // Bit-flip the newest checkpoint of shot 0 (if present): recovery
      // must fall back to the rotated predecessor, not die.
      const std::string ck = chaos_dir + "/shot_0.tpck";
      if (flip_byte(ck, rng.next())) {
        util::info("chaos: corrupted " + ck);
      }
    }
  }

  // 3. Final uninterrupted restart must finish the survey...
  const ChildResult fin = spawn_worker(self, spec.worker_args, chaos_dir, -1);
  if (fin.killed || fin.exit_code != 0) {
    return "chaos: final restart failed (exit " +
           std::to_string(fin.exit_code) + ")";
  }

  // ...and its gathers must match the reference run byte for byte.
  for (int s = 0; s < spec.shots; ++s) {
    const std::string name = "/shot_" + std::to_string(s) + ".tpg";
    if (!files_identical(ref_dir + name, chaos_dir + name)) {
      return "chaos: gather mismatch for shot " + std::to_string(s);
    }
  }
  util::info("chaos: " + std::to_string(spec.shots) +
             " gathers bit-identical after " + std::to_string(spec.kills) +
             " kills");
  std::filesystem::remove_all(spec.root);
  return "";
}

int run_chaos_worker(const util::Cli& cli) {
  SurveySpec spec;
  spec.n = static_cast<int>(cli.get_int("size", 24));
  spec.nt = static_cast<int>(cli.get_int("steps", 40));
  spec.n_shots = static_cast<int>(cli.get_int("shots", 3));
  spec.space_order = static_cast<int>(cli.get_int("so", 4));
  spec.physics = cli.get("physics", "acoustic");
  spec.schedule =
      physics::schedule_from_string(cli.get("schedule", "wavefront"));
  spec.jobs_dir = cli.get("dir", "chaos_jobs");
  spec.ckpt_every = static_cast<int>(cli.get_int("ckpt-every", 8));
  spec.health_every = 0;  // determinism only; health scans cost time
  const SurveyReport report = run_survey(spec);
  return report.quarantined == 0 ? 0 : 2;
}

}  // namespace tempest::jobs
