#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "tempest/jobs/journal.hpp"

namespace tempest::jobs {

/// Thrown when an existing journal belongs to a different run plan (other
/// fingerprint or job count): resuming someone else's survey would silently
/// skip or redo shots, so the caller must delete the jobs directory (or
/// point at another) to proceed.
class JournalMismatchError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class JobState : std::uint8_t { Pending, Running, Done, Quarantined };

[[nodiscard]] constexpr const char* to_string(JobState s) {
  switch (s) {
    case JobState::Pending: return "pending";
    case JobState::Running: return "running";
    case JobState::Done: return "done";
    case JobState::Quarantined: return "quarantined";
  }
  return "?";
}

/// Everything the queue knows about one job, reconstructed from the journal
/// on recovery and kept current in memory while running.
struct JobInfo {
  JobState state = JobState::Pending;
  int attempts = 0;       ///< Started records seen (all levels)
  int level = 0;          ///< current/final degradation-ladder level
  bool degraded = false;  ///< ever stepped down the ladder
  bool interrupted = false;  ///< was mid-run when a previous process died
  double seconds = 0.0;      ///< wall-clock of the winning attempt
  std::string detail;        ///< diagnostics from the last recorded event
};

/// Crash-consistent shot-job queue over a write-ahead Journal.
///
/// Construction replays the journal when one exists: the first record must
/// be a Plan matching this run's fingerprint and job count (else
/// JournalMismatchError — a journal from different flags is never silently
/// reused), every later record advances one job's state machine
/// pending -> running -> done | quarantined, and a job left Running by a
/// dead process is returned to Pending with `interrupted` set so the
/// executor knows to look for its mid-shot checkpoint. A torn tail — the
/// signature of a kill mid-append — is healed by compacting the intact
/// prefix back to disk before any new record is appended.
///
/// Every mark_*() appends to the journal *before* mutating memory: the
/// on-disk history is always at least as new as the in-memory view.
class JobQueue {
 public:
  JobQueue(std::string journal_path, std::uint64_t plan_fingerprint,
           int n_jobs);

  [[nodiscard]] int n_jobs() const { return static_cast<int>(jobs_.size()); }
  [[nodiscard]] const JobInfo& job(int i) const { return jobs_.at(i); }
  [[nodiscard]] bool recovered() const { return recovered_; }

  /// Lowest-index Pending job, or -1 when none remain.
  [[nodiscard]] int next_pending() const;
  [[nodiscard]] bool all_done() const;
  [[nodiscard]] int count(JobState s) const;

  void mark_started(int job, int attempt, int level);
  void mark_done(int job, double seconds, int level, bool degraded,
                 const std::string& detail);
  void mark_transient(int job, int attempt, const std::string& detail);
  void mark_degraded(int job, int new_level, const std::string& detail);
  void mark_quarantined(int job, const std::string& detail);

  /// Remove the journal (call when the survey completed and its outputs are
  /// durably on disk — a stale journal must not shadow the next run).
  void remove_journal() const { journal_.remove(); }

 private:
  void append_and_apply(const Record& r);
  void apply(const Record& r);

  Journal journal_;
  std::vector<JobInfo> jobs_;
  bool recovered_ = false;
};

}  // namespace tempest::jobs
