#include "tempest/jobs/report.hpp"

#include <algorithm>
#include <fstream>

#include "tempest/util/error.hpp"
#include "tempest/util/json.hpp"

namespace tempest::jobs {

namespace {

/// Nearest-rank percentile over an ascending-sorted sample.
double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(sorted.size()) + 0.5);
  return sorted[std::min(rank == 0 ? 0 : rank - 1, sorted.size() - 1)];
}

}  // namespace

void finalize_aggregates(SurveyReport& report) {
  report.done = 0;
  report.degraded = 0;
  report.quarantined = 0;
  std::vector<double> latencies;
  for (const ShotReport& s : report.shots) {
    if (s.state == "done") {
      report.done += 1;
      report.degraded += s.degraded ? 1 : 0;
      latencies.push_back(s.seconds);
    } else if (s.state == "quarantined") {
      report.quarantined += 1;
    }
  }
  if (report.obs) {
    // v2: quantiles from the shared histogram (see report.hpp for the
    // rule) — the same numbers any fleet-level aggregator derives from the
    // exported buckets.
    const obs::Histogram& h =
        report.latency[static_cast<std::size_t>(obs::Metric::ShotSeconds)];
    report.p50_shot_seconds = static_cast<double>(h.quantile(0.50)) / 1e9;
    report.p99_shot_seconds = static_cast<double>(h.quantile(0.99)) / 1e9;
  } else {
    std::sort(latencies.begin(), latencies.end());
    report.p50_shot_seconds = percentile(latencies, 50.0);
    report.p99_shot_seconds = percentile(latencies, 99.0);
  }
  report.shots_per_hour =
      report.total_seconds > 0.0
          ? static_cast<double>(report.done) * 3600.0 / report.total_seconds
          : 0.0;
}

void write_survey_json(const std::string& path, const SurveyReport& report) {
  std::ofstream os(path);
  TEMPEST_REQUIRE_MSG(os.good(), "cannot open '" + path + "' for write");
  util::JsonWriter w(os);
  w.begin_object();
  w.field("schema", report.obs ? "tempest-survey-v2" : "tempest-survey-v1");
  w.field("physics", report.physics);
  w.field("requested_schedule", report.requested_schedule);
  w.field("size", report.size);
  w.field("steps", report.steps);
  w.field("shots", report.n_shots);
  w.field("recovered", report.recovered);
  w.field("total_seconds", report.total_seconds);
  w.field("done", report.done);
  w.field("degraded", report.degraded);
  w.field("quarantined", report.quarantined);
  w.field("shots_per_hour", report.shots_per_hour);
  w.field("p50_shot_seconds", report.p50_shot_seconds);
  w.field("p99_shot_seconds", report.p99_shot_seconds);
  if (report.obs) {
    // v2 only — v1 output stays byte-identical to the pre-obs schema. Each
    // histogram is exported as cumulative le-buckets in seconds (only the
    // occupied ones; cumulative counts are non-decreasing by construction
    // and the final entry always equals "count").
    w.key("latency_histograms");
    w.begin_object();
    for (int m = 0; m < obs::kNumMetrics; ++m) {
      const obs::Histogram& h = report.latency[static_cast<std::size_t>(m)];
      w.key(obs::to_string(static_cast<obs::Metric>(m)));
      w.begin_object();
      w.field("count", static_cast<unsigned long long>(h.count()));
      w.field("sum_seconds", static_cast<double>(h.sum()) / 1e9);
      w.field("min_seconds", static_cast<double>(h.min()) / 1e9);
      w.field("max_seconds", static_cast<double>(h.max()) / 1e9);
      w.key("buckets");
      w.begin_array();
      unsigned long long cum = 0;
      for (int i = 0; i < obs::Histogram::kNumBuckets; ++i) {
        const std::uint64_t n = h.bucket_count(i);
        if (n == 0) continue;
        cum += n;
        w.begin_object();
        w.field("le",
                static_cast<double>(obs::Histogram::bucket_upper(i)) / 1e9);
        w.field("count", cum);
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.end_object();
  }
  w.key("shot_reports");
  w.begin_array();
  for (const ShotReport& s : report.shots) {
    w.begin_object();
    w.field("shot", s.shot);
    w.field("state", s.state);
    w.field("attempts", s.attempts);
    w.field("level", s.level);
    w.field("level_name", s.level_name);
    w.field("degraded", s.degraded);
    w.field("seconds", s.seconds);
    w.field("detail", s.detail);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os.flush();
  TEMPEST_REQUIRE_MSG(os.good(), "writing '" + path + "' failed");
}

}  // namespace tempest::jobs
