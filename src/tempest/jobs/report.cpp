#include "tempest/jobs/report.hpp"

#include <algorithm>
#include <fstream>

#include "tempest/util/error.hpp"
#include "tempest/util/json.hpp"

namespace tempest::jobs {

namespace {

/// Nearest-rank percentile over an ascending-sorted sample.
double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(sorted.size()) + 0.5);
  return sorted[std::min(rank == 0 ? 0 : rank - 1, sorted.size() - 1)];
}

}  // namespace

void finalize_aggregates(SurveyReport& report) {
  report.done = 0;
  report.degraded = 0;
  report.quarantined = 0;
  std::vector<double> latencies;
  for (const ShotReport& s : report.shots) {
    if (s.state == "done") {
      report.done += 1;
      report.degraded += s.degraded ? 1 : 0;
      latencies.push_back(s.seconds);
    } else if (s.state == "quarantined") {
      report.quarantined += 1;
    }
  }
  std::sort(latencies.begin(), latencies.end());
  report.p50_shot_seconds = percentile(latencies, 50.0);
  report.p99_shot_seconds = percentile(latencies, 99.0);
  report.shots_per_hour =
      report.total_seconds > 0.0
          ? static_cast<double>(report.done) * 3600.0 / report.total_seconds
          : 0.0;
}

void write_survey_json(const std::string& path, const SurveyReport& report) {
  std::ofstream os(path);
  TEMPEST_REQUIRE_MSG(os.good(), "cannot open '" + path + "' for write");
  util::JsonWriter w(os);
  w.begin_object();
  w.field("schema", "tempest-survey-v1");
  w.field("physics", report.physics);
  w.field("requested_schedule", report.requested_schedule);
  w.field("size", report.size);
  w.field("steps", report.steps);
  w.field("shots", report.n_shots);
  w.field("recovered", report.recovered);
  w.field("total_seconds", report.total_seconds);
  w.field("done", report.done);
  w.field("degraded", report.degraded);
  w.field("quarantined", report.quarantined);
  w.field("shots_per_hour", report.shots_per_hour);
  w.field("p50_shot_seconds", report.p50_shot_seconds);
  w.field("p99_shot_seconds", report.p99_shot_seconds);
  w.key("shot_reports");
  w.begin_array();
  for (const ShotReport& s : report.shots) {
    w.begin_object();
    w.field("shot", s.shot);
    w.field("state", s.state);
    w.field("attempts", s.attempts);
    w.field("level", s.level);
    w.field("level_name", s.level_name);
    w.field("degraded", s.degraded);
    w.field("seconds", s.seconds);
    w.field("detail", s.detail);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os.flush();
  TEMPEST_REQUIRE_MSG(os.good(), "writing '" + path + "' failed");
}

}  // namespace tempest::jobs
