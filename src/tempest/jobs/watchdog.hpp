#pragma once

#include <functional>
#include <stdexcept>
#include <string>

namespace tempest::jobs {

/// Thrown by Watchdog::beat() when the time since the previous beat exceeds
/// the deadline — the shot is progressing too slowly to be worth finishing
/// at its current schedule (a mis-tuned tile spec, a JIT kernel that
/// pessimised, an overloaded host). Classified as a *degrade* failure: the
/// runner retries the shot one rung down the degradation ladder rather
/// than quarantining it.
class WatchdogTimeoutError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Cooperative per-shot progress watchdog.
///
/// Threadless by design: beat(step) is called from the engine's per-step
/// callback (barrier schedules — the only schedules with a mid-run progress
/// point), and throws when the gap since the previous beat exceeds
/// `timeout_ms`. Throwing from the callback unwinds the shot cleanly —
/// no signals, no racing a detached thread against a live propagator. The
/// trade-off is honesty about scope: a kernel wedged *inside* one timestep
/// never reaches the next beat; that failure mode is covered by the
/// process-level chaos/kill layer, which a journaled restart recovers from.
///
/// The clock is injectable so tests drive timeouts deterministically
/// (pass a lambda over a fake now_ms counter).
class Watchdog {
 public:
  using Clock = std::function<double()>;  ///< monotonic milliseconds

  Watchdog(double timeout_ms, Clock clock)
      : timeout_ms_(timeout_ms), clock_(std::move(clock)) {}

  [[nodiscard]] bool enabled() const { return timeout_ms_ > 0.0; }

  /// Start (or restart) the interval measurement.
  void start() {
    if (enabled()) last_beat_ms_ = clock_();
  }

  /// Record progress at `step`; throws WatchdogTimeoutError when the gap
  /// since the previous beat exceeds the deadline.
  void beat(int step) {
    if (!enabled()) return;
    const double now = clock_();
    const double gap = now - last_beat_ms_;
    last_beat_ms_ = now;
    if (gap > timeout_ms_) {
      throw WatchdogTimeoutError(
          "watchdog: step " + std::to_string(step) + " took " +
          std::to_string(gap) + " ms (deadline " +
          std::to_string(timeout_ms_) +
          " ms) — degrading to a cheaper schedule");
    }
  }

 private:
  double timeout_ms_;
  Clock clock_;
  double last_beat_ms_ = 0.0;
};

}  // namespace tempest::jobs
