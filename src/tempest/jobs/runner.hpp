#pragma once

#include <exception>
#include <functional>
#include <string>
#include <vector>

#include "tempest/jobs/queue.hpp"
#include "tempest/util/backoff.hpp"
#include "tempest/util/error.hpp"

namespace tempest::jobs {

/// Map a caught exception to the retry taxonomy (see util::FailureKind):
///
///   Permanent  — legality rejection, CFL/config precondition violations,
///                checkpoint fingerprint mismatch, unknown exceptions:
///                deterministic, retrying reproduces them. Quarantine.
///   Degrade    — watchdog timeout, numerical health failure (NaN/blow-up
///                under an aggressive schedule): the *next rung down the
///                ladder* may well succeed. Retry one level down.
///   Transient  — injected faults, checkpoint/journal I/O errors, JIT
///                compile failures (util::TransientError and
///                io::CorruptFileError): the environment may recover.
///                Retry at the same level after backoff.
[[nodiscard]] util::FailureKind classify(const std::exception& e);

/// One rung of a job's degradation ladder, executor-defined (for the
/// survey: the requested schedule, then space-blocked, then reference).
struct LadderRung {
  std::string name;
};

/// What one attempt must do and report.
struct Attempt {
  int job = 0;
  int attempt = 1;    ///< 1-based, within the current ladder level
  int level = 0;      ///< index into the ladder
  bool interrupted = false;  ///< a previous process died mid-run on this job
};

struct AttemptResult {
  double seconds = 0.0;
  bool degraded = false;  ///< executor degraded internally (e.g. JIT ->
                          ///< interpreter) even though the level held
  std::string detail;
};

/// Drives a JobQueue to completion through an executor callback, applying
/// the retry/backoff/degradation policy. The executor runs one attempt of
/// one job and either returns an AttemptResult or throws; classify() of the
/// thrown exception picks the policy edge:
///
///   Transient  -> backoff.delay_ms(attempt), retry same level, up to
///                 policy.max_attempts per level, then treat as Degrade
///                 (the environment is not recovering; a cheaper schedule
///                 gives it fewer chances to bite)
///   Degrade    -> next ladder level, attempt counter reset
///   Permanent  -> quarantine with diagnostics, never retried
///
/// Exhausting the ladder quarantines the job. Every transition is journaled
/// through the queue before it is acted on. The sleeper is injectable so
/// tests run at full speed.
class Runner {
 public:
  using ExecuteFn = std::function<AttemptResult(const Attempt&)>;
  using SleepFn = std::function<void(double /*ms*/)>;
  /// Fired after each attempt's fate is journaled; `outcome` is one of
  /// "done", "transient", "degraded", "quarantined". The survey uses this
  /// to retain the attempt's flight-recorder black box on failure and
  /// recycle it on success.
  using OutcomeFn = std::function<void(const Attempt&, const char* outcome)>;

  Runner(JobQueue& queue, std::vector<LadderRung> ladder,
         util::BackoffPolicy policy, ExecuteFn execute,
         SleepFn sleep = util::sleep_ms);

  void set_on_outcome(OutcomeFn on_outcome) {
    on_outcome_ = std::move(on_outcome);
  }

  /// Run until every job is Done or Quarantined. Returns the number of
  /// jobs that finished Done.
  int run();

 private:
  JobQueue& queue_;
  std::vector<LadderRung> ladder_;
  util::BackoffPolicy policy_;
  ExecuteFn execute_;
  SleepFn sleep_;
  OutcomeFn on_outcome_;
};

}  // namespace tempest::jobs
