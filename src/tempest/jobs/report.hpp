#pragma once

#include <string>
#include <vector>

namespace tempest::jobs {

/// Final per-shot row of the survey report, straight from the job queue.
struct ShotReport {
  int shot = 0;
  std::string state;       ///< done | quarantined | pending (aborted run)
  int attempts = 0;        ///< Started records across all levels
  int level = 0;           ///< final degradation-ladder level
  std::string level_name;  ///< ladder rung the shot finished (or died) on
  bool degraded = false;   ///< finished below the requested rung
  double seconds = 0.0;    ///< wall-clock of the winning attempt
  std::string detail;      ///< diagnostics from the last recorded event
};

/// Machine-readable survey summary (schema "tempest-survey-v1").
struct SurveyReport {
  std::string physics;
  std::string requested_schedule;
  int size = 0;
  int steps = 0;
  int n_shots = 0;
  bool recovered = false;  ///< this run resumed a dead process's journal
  double total_seconds = 0.0;
  int done = 0;
  int degraded = 0;
  int quarantined = 0;
  double shots_per_hour = 0.0;  ///< completed shots over total wall-clock
  double p50_shot_seconds = 0.0;
  double p99_shot_seconds = 0.0;
  std::vector<ShotReport> shots;
};

/// Fill the throughput/latency aggregates from the per-shot rows and
/// `total_seconds`: shots/hour counts Done shots against the whole run's
/// wall-clock; p50/p99 are nearest-rank percentiles over the winning
/// attempts of Done shots.
void finalize_aggregates(SurveyReport& report);

/// Write the schema-versioned BENCH_survey.json sink
/// (scripts/bench_check.py validates it in CI).
void write_survey_json(const std::string& path, const SurveyReport& report);

}  // namespace tempest::jobs
