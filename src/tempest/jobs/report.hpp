#pragma once

#include <string>
#include <vector>

#include "tempest/obs/histogram.hpp"
#include "tempest/obs/metrics.hpp"

namespace tempest::jobs {

/// Final per-shot row of the survey report, straight from the job queue.
struct ShotReport {
  int shot = 0;
  std::string state;       ///< done | quarantined | pending (aborted run)
  int attempts = 0;        ///< Started records across all levels
  int level = 0;           ///< final degradation-ladder level
  std::string level_name;  ///< ladder rung the shot finished (or died) on
  bool degraded = false;   ///< finished below the requested rung
  double seconds = 0.0;    ///< wall-clock of the winning attempt
  std::string detail;      ///< diagnostics from the last recorded event
};

/// Machine-readable survey summary. Two schemas share this struct:
///
///   "tempest-survey-v1" (obs == false, or TEMPEST_TRACE=OFF builds) — the
///   original fields only, byte-identical to pre-obs output: p50/p99 are
///   nearest-rank percentiles over the exact per-shot latencies.
///
///   "tempest-survey-v2" (obs == true) — adds a "latency_histograms"
///   object with the full fixed-layout bucket contents of every obs
///   metric, and p50/p99 come from the shared obs::Histogram quantile rule
///   (inclusive upper bound of the first bucket whose cumulative count
///   reaches ceil(q*N), clamped to the observed [min, max]; an upward bias
///   of at most one bucket width, <= 12.5% relative). Histogram-derived
///   quantiles are what a fleet aggregator can merge across surveys
///   without the raw samples.
struct SurveyReport {
  std::string physics;
  std::string requested_schedule;
  int size = 0;
  int steps = 0;
  int n_shots = 0;
  bool recovered = false;  ///< this run resumed a dead process's journal
  double total_seconds = 0.0;
  int done = 0;
  int degraded = 0;
  int quarantined = 0;
  double shots_per_hour = 0.0;  ///< completed shots over total wall-clock
  double p50_shot_seconds = 0.0;
  double p99_shot_seconds = 0.0;
  bool obs = false;  ///< true: v2 schema with latency histograms
  obs::MetricSnapshot latency{};  ///< survey-wide metric histograms (v2)
  std::vector<ShotReport> shots;
};

/// Fill the throughput/latency aggregates from the per-shot rows and
/// `total_seconds`: shots/hour counts Done shots against the whole run's
/// wall-clock. v1 (obs == false): p50/p99 are nearest-rank percentiles
/// over the winning attempts of Done shots. v2: p50/p99 come from the
/// ShotSeconds histogram in `latency` (see the SurveyReport comment for
/// the quantile rule).
void finalize_aggregates(SurveyReport& report);

/// Write the schema-versioned BENCH_survey.json sink
/// (scripts/bench_check.py validates it in CI).
void write_survey_json(const std::string& path, const SurveyReport& report);

}  // namespace tempest::jobs
