#pragma once

#include <string>

#include "tempest/config.hpp"
#include "tempest/grid/grid3.hpp"
#include "tempest/sparse/series.hpp"
#include "tempest/util/error.hpp"

namespace tempest::io {

/// Thrown when a file fails structural validation before its payload is
/// trusted: wrong magic, nonsensical header values, or a declared payload
/// that disagrees with the actual file size (truncation/corruption). The
/// message names the path and exactly what mismatched. Derives from
/// PreconditionError so existing catch sites keep working.
class CorruptFileError : public util::PreconditionError {
 public:
  CorruptFileError(std::string path, const std::string& detail)
      : util::PreconditionError("corrupt file '" + path + "': " + detail),
        path_(std::move(path)) {}

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Minimal persistence for fields and gathers: a tagged little-endian
/// binary container (magic + header + raw payload) for exact round trips,
/// plus CSV export for plotting. Wavefield snapshots, shot gathers and RTM
/// images all flow through here in the examples.

/// Save/load a field with its full geometry (extents + halo). The halo
/// contents are preserved exactly, so a loaded field is bitwise identical.
/// load_field validates magic, header sanity and payload length against the
/// actual file size before allocating; throws CorruptFileError otherwise.
void save_field(const std::string& path, const grid::Grid3<real_t>& field);
[[nodiscard]] grid::Grid3<real_t> load_field(const std::string& path);

/// Save/load a sparse time series (coordinates + the nt x npoints data).
/// load_gather performs the same pre-validation as load_field.
void save_gather(const std::string& path,
                 const sparse::SparseTimeSeries& gather);
[[nodiscard]] sparse::SparseTimeSeries load_gather(const std::string& path);

/// CSV export of a gather: header "t_ms,rec0,rec1,..." then one row per
/// timestep. `dt_ms` scales the time column.
void save_gather_csv(const std::string& path,
                     const sparse::SparseTimeSeries& gather, double dt_ms);

/// CSV export of one y-slice of a field as (x, z, value) triplets — the
/// plotting format the RTM example uses for images.
void save_slice_csv(const std::string& path,
                    const grid::Grid3<real_t>& field, int y);

}  // namespace tempest::io
