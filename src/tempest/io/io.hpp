#pragma once

#include <string>

#include "tempest/config.hpp"
#include "tempest/grid/grid3.hpp"
#include "tempest/sparse/series.hpp"

namespace tempest::io {

/// Minimal persistence for fields and gathers: a tagged little-endian
/// binary container (magic + header + raw payload) for exact round trips,
/// plus CSV export for plotting. Wavefield snapshots, shot gathers and RTM
/// images all flow through here in the examples.

/// Save/load a field with its full geometry (extents + halo). The halo
/// contents are preserved exactly, so a loaded field is bitwise identical.
void save_field(const std::string& path, const grid::Grid3<real_t>& field);
[[nodiscard]] grid::Grid3<real_t> load_field(const std::string& path);

/// Save/load a sparse time series (coordinates + the nt x npoints data).
void save_gather(const std::string& path,
                 const sparse::SparseTimeSeries& gather);
[[nodiscard]] sparse::SparseTimeSeries load_gather(const std::string& path);

/// CSV export of a gather: header "t_ms,rec0,rec1,..." then one row per
/// timestep. `dt_ms` scales the time column.
void save_gather_csv(const std::string& path,
                     const sparse::SparseTimeSeries& gather, double dt_ms);

/// CSV export of one y-slice of a field as (x, z, value) triplets — the
/// plotting format the RTM example uses for images.
void save_slice_csv(const std::string& path,
                    const grid::Grid3<real_t>& field, int y);

}  // namespace tempest::io
