#include "tempest/io/io.hpp"

#include <cstdint>
#include <fstream>

#include "tempest/util/error.hpp"

namespace tempest::io {

namespace {

constexpr std::uint32_t kFieldMagic = 0x54504631;   // "TPF1"
constexpr std::uint32_t kGatherMagic = 0x54504731;  // "TPG1"

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  TEMPEST_REQUIRE_MSG(static_cast<bool>(is), "truncated file");
  return v;
}

std::ofstream open_out(const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  TEMPEST_REQUIRE_MSG(os.is_open(), "cannot open for writing: " + path);
  return os;
}

std::ifstream open_in(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  TEMPEST_REQUIRE_MSG(is.is_open(), "cannot open for reading: " + path);
  return is;
}

}  // namespace

void save_field(const std::string& path, const grid::Grid3<real_t>& field) {
  auto os = open_out(path);
  write_pod(os, kFieldMagic);
  write_pod(os, static_cast<std::int32_t>(field.extents().nx));
  write_pod(os, static_cast<std::int32_t>(field.extents().ny));
  write_pod(os, static_cast<std::int32_t>(field.extents().nz));
  write_pod(os, static_cast<std::int32_t>(field.halo()));
  os.write(reinterpret_cast<const char*>(field.raw()),
           static_cast<std::streamsize>(field.padded_size() * sizeof(real_t)));
  TEMPEST_REQUIRE_MSG(static_cast<bool>(os), "write failed: " + path);
}

grid::Grid3<real_t> load_field(const std::string& path) {
  auto is = open_in(path);
  TEMPEST_REQUIRE_MSG(read_pod<std::uint32_t>(is) == kFieldMagic,
                      "not a tempest field file: " + path);
  const int nx = read_pod<std::int32_t>(is);
  const int ny = read_pod<std::int32_t>(is);
  const int nz = read_pod<std::int32_t>(is);
  const int halo = read_pod<std::int32_t>(is);
  grid::Grid3<real_t> field({nx, ny, nz}, halo);
  is.read(reinterpret_cast<char*>(field.raw()),
          static_cast<std::streamsize>(field.padded_size() * sizeof(real_t)));
  TEMPEST_REQUIRE_MSG(static_cast<bool>(is), "truncated field payload");
  return field;
}

void save_gather(const std::string& path,
                 const sparse::SparseTimeSeries& gather) {
  auto os = open_out(path);
  write_pod(os, kGatherMagic);
  write_pod(os, static_cast<std::int32_t>(gather.nt()));
  write_pod(os, static_cast<std::int32_t>(gather.npoints()));
  for (const sparse::Coord3& c : gather.coords()) {
    write_pod(os, c.x);
    write_pod(os, c.y);
    write_pod(os, c.z);
  }
  for (int t = 0; t < gather.nt(); ++t) {
    const auto step = gather.step(t);
    os.write(reinterpret_cast<const char*>(step.data()),
             static_cast<std::streamsize>(step.size() * sizeof(real_t)));
  }
  TEMPEST_REQUIRE_MSG(static_cast<bool>(os), "write failed: " + path);
}

sparse::SparseTimeSeries load_gather(const std::string& path) {
  auto is = open_in(path);
  TEMPEST_REQUIRE_MSG(read_pod<std::uint32_t>(is) == kGatherMagic,
                      "not a tempest gather file: " + path);
  const int nt = read_pod<std::int32_t>(is);
  const int npoints = read_pod<std::int32_t>(is);
  TEMPEST_REQUIRE(nt > 0 && npoints >= 0);
  sparse::CoordList coords(static_cast<std::size_t>(npoints));
  for (sparse::Coord3& c : coords) {
    c.x = read_pod<double>(is);
    c.y = read_pod<double>(is);
    c.z = read_pod<double>(is);
  }
  sparse::SparseTimeSeries gather(std::move(coords), nt);
  for (int t = 0; t < nt; ++t) {
    auto step = gather.step(t);
    is.read(reinterpret_cast<char*>(step.data()),
            static_cast<std::streamsize>(step.size() * sizeof(real_t)));
  }
  TEMPEST_REQUIRE_MSG(static_cast<bool>(is), "truncated gather payload");
  return gather;
}

void save_gather_csv(const std::string& path,
                     const sparse::SparseTimeSeries& gather, double dt_ms) {
  std::ofstream os(path);
  TEMPEST_REQUIRE_MSG(os.is_open(), "cannot open for writing: " + path);
  os << "t_ms";
  for (int r = 0; r < gather.npoints(); ++r) os << ",rec" << r;
  os << "\n";
  for (int t = 0; t < gather.nt(); ++t) {
    os << t * dt_ms;
    for (int r = 0; r < gather.npoints(); ++r) os << ',' << gather.at(t, r);
    os << "\n";
  }
}

void save_slice_csv(const std::string& path,
                    const grid::Grid3<real_t>& field, int y) {
  TEMPEST_REQUIRE(y >= 0 && y < field.extents().ny);
  std::ofstream os(path);
  TEMPEST_REQUIRE_MSG(os.is_open(), "cannot open for writing: " + path);
  os << "x,z,value\n";
  for (int x = 0; x < field.extents().nx; ++x) {
    for (int z = 0; z < field.extents().nz; ++z) {
      os << x << ',' << z << ',' << field(x, y, z) << "\n";
    }
  }
}

}  // namespace tempest::io
