#include "tempest/io/io.hpp"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "tempest/util/error.hpp"

namespace tempest::io {

namespace {

constexpr std::uint32_t kFieldMagic = 0x54504631;   // "TPF1"
constexpr std::uint32_t kGatherMagic = 0x54504731;  // "TPG1"

/// Dimension sanity bounds: a garbage header must not be able to request a
/// multi-terabyte allocation before the size cross-check runs.
constexpr int kMaxExtent = 1 << 20;
constexpr int kMaxHalo = 1 << 10;
constexpr int kMaxPoints = 1 << 28;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  TEMPEST_REQUIRE_MSG(static_cast<bool>(is), "truncated file");
  return v;
}

/// Actual on-disk size, for validating declared payloads before allocating.
std::uintmax_t file_size_of(const std::string& path) {
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(path, ec);
  if (ec) throw CorruptFileError(path, "cannot stat: " + ec.message());
  return size;
}

[[noreturn]] void throw_size_mismatch(const std::string& path,
                                      const char* kind,
                                      std::uintmax_t expected,
                                      std::uintmax_t actual) {
  std::ostringstream os;
  os << kind << " declares " << expected << " bytes but the file holds "
     << actual << " — truncated or corrupted";
  throw CorruptFileError(path, os.str());
}

std::ofstream open_out(const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  TEMPEST_REQUIRE_MSG(os.is_open(), "cannot open for writing: " + path);
  return os;
}

std::ifstream open_in(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  TEMPEST_REQUIRE_MSG(is.is_open(), "cannot open for reading: " + path);
  return is;
}

}  // namespace

void save_field(const std::string& path, const grid::Grid3<real_t>& field) {
  auto os = open_out(path);
  write_pod(os, kFieldMagic);
  write_pod(os, static_cast<std::int32_t>(field.extents().nx));
  write_pod(os, static_cast<std::int32_t>(field.extents().ny));
  write_pod(os, static_cast<std::int32_t>(field.extents().nz));
  write_pod(os, static_cast<std::int32_t>(field.halo()));
  os.write(reinterpret_cast<const char*>(field.raw()),
           static_cast<std::streamsize>(field.padded_size() * sizeof(real_t)));
  TEMPEST_REQUIRE_MSG(static_cast<bool>(os), "write failed: " + path);
}

grid::Grid3<real_t> load_field(const std::string& path) {
  constexpr std::uintmax_t kHeader = 5 * sizeof(std::uint32_t);
  const std::uintmax_t actual = file_size_of(path);
  if (actual < kHeader) {
    throw CorruptFileError(path, "too small to hold a field header (" +
                                     std::to_string(actual) + " bytes)");
  }
  auto is = open_in(path);
  if (read_pod<std::uint32_t>(is) != kFieldMagic) {
    throw CorruptFileError(path, "bad magic — not a tempest field file");
  }
  const int nx = read_pod<std::int32_t>(is);
  const int ny = read_pod<std::int32_t>(is);
  const int nz = read_pod<std::int32_t>(is);
  const int halo = read_pod<std::int32_t>(is);
  if (nx <= 0 || ny <= 0 || nz <= 0 || nx > kMaxExtent || ny > kMaxExtent ||
      nz > kMaxExtent || halo < 0 || halo > kMaxHalo) {
    std::ostringstream os;
    os << "implausible field header: extents (" << nx << ", " << ny << ", "
       << nz << "), halo " << halo;
    throw CorruptFileError(path, os.str());
  }
  const std::uintmax_t padded =
      static_cast<std::uintmax_t>(nx + 2 * halo) *
      static_cast<std::uintmax_t>(ny + 2 * halo) *
      static_cast<std::uintmax_t>(nz + 2 * halo);
  const std::uintmax_t expected = kHeader + padded * sizeof(real_t);
  if (expected != actual) {
    throw_size_mismatch(path, "field header", expected, actual);
  }
  grid::Grid3<real_t> field({nx, ny, nz}, halo);
  is.read(reinterpret_cast<char*>(field.raw()),
          static_cast<std::streamsize>(field.padded_size() * sizeof(real_t)));
  TEMPEST_REQUIRE_MSG(static_cast<bool>(is), "truncated field payload");
  return field;
}

void save_gather(const std::string& path,
                 const sparse::SparseTimeSeries& gather) {
  auto os = open_out(path);
  write_pod(os, kGatherMagic);
  write_pod(os, static_cast<std::int32_t>(gather.nt()));
  write_pod(os, static_cast<std::int32_t>(gather.npoints()));
  for (const sparse::Coord3& c : gather.coords()) {
    write_pod(os, c.x);
    write_pod(os, c.y);
    write_pod(os, c.z);
  }
  for (int t = 0; t < gather.nt(); ++t) {
    const auto step = gather.step(t);
    os.write(reinterpret_cast<const char*>(step.data()),
             static_cast<std::streamsize>(step.size() * sizeof(real_t)));
  }
  TEMPEST_REQUIRE_MSG(static_cast<bool>(os), "write failed: " + path);
}

sparse::SparseTimeSeries load_gather(const std::string& path) {
  constexpr std::uintmax_t kHeader = 3 * sizeof(std::uint32_t);
  const std::uintmax_t actual = file_size_of(path);
  if (actual < kHeader) {
    throw CorruptFileError(path, "too small to hold a gather header (" +
                                     std::to_string(actual) + " bytes)");
  }
  auto is = open_in(path);
  if (read_pod<std::uint32_t>(is) != kGatherMagic) {
    throw CorruptFileError(path, "bad magic — not a tempest gather file");
  }
  const int nt = read_pod<std::int32_t>(is);
  const int npoints = read_pod<std::int32_t>(is);
  if (nt <= 0 || npoints < 0 || npoints > kMaxPoints) {
    std::ostringstream os;
    os << "implausible gather header: nt " << nt << ", npoints " << npoints;
    throw CorruptFileError(path, os.str());
  }
  const std::uintmax_t expected =
      kHeader +
      static_cast<std::uintmax_t>(npoints) * 3 * sizeof(double) +
      static_cast<std::uintmax_t>(nt) * static_cast<std::uintmax_t>(npoints) *
          sizeof(real_t);
  if (expected != actual) {
    throw_size_mismatch(path, "gather header", expected, actual);
  }
  sparse::CoordList coords(static_cast<std::size_t>(npoints));
  for (sparse::Coord3& c : coords) {
    c.x = read_pod<double>(is);
    c.y = read_pod<double>(is);
    c.z = read_pod<double>(is);
  }
  sparse::SparseTimeSeries gather(std::move(coords), nt);
  for (int t = 0; t < nt; ++t) {
    auto step = gather.step(t);
    is.read(reinterpret_cast<char*>(step.data()),
            static_cast<std::streamsize>(step.size() * sizeof(real_t)));
  }
  TEMPEST_REQUIRE_MSG(static_cast<bool>(is), "truncated gather payload");
  return gather;
}

void save_gather_csv(const std::string& path,
                     const sparse::SparseTimeSeries& gather, double dt_ms) {
  std::ofstream os(path);
  TEMPEST_REQUIRE_MSG(os.is_open(), "cannot open for writing: " + path);
  os << "t_ms";
  for (int r = 0; r < gather.npoints(); ++r) os << ",rec" << r;
  os << "\n";
  for (int t = 0; t < gather.nt(); ++t) {
    os << t * dt_ms;
    for (int r = 0; r < gather.npoints(); ++r) os << ',' << gather.at(t, r);
    os << "\n";
  }
}

void save_slice_csv(const std::string& path,
                    const grid::Grid3<real_t>& field, int y) {
  TEMPEST_REQUIRE(y >= 0 && y < field.extents().ny);
  std::ofstream os(path);
  TEMPEST_REQUIRE_MSG(os.is_open(), "cannot open for writing: " + path);
  os << "x,z,value\n";
  for (int x = 0; x < field.extents().nx; ++x) {
    for (int z = 0; z < field.extents().nz; ++z) {
      os << x << ',' << z << ',' << field(x, y, z) << "\n";
    }
  }
}

}  // namespace tempest::io
