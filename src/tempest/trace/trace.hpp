#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace tempest::trace {

/// Low-overhead structured tracing and metrics for the execution schedules.
///
/// Two primitives:
///   * monotonic counters — exact work accounting (cells updated, sources
///     injected, ...) accumulated in thread-local buffers. The counters are
///     the runtime's ground truth of *what a schedule did*, and the
///     cross-schedule equivalence tests assert on them (every legal schedule
///     must update exactly the same number of cells as the reference sweep);
///   * scoped spans — named wall-clock intervals (one per timestep phase,
///     wavefront band, autotune trial, JIT compile, ...) emitted to a Chrome
///     `trace_event` JSON sink loadable in Perfetto / chrome://tracing.
///
/// Cost model: everything is gated on a single relaxed atomic flag. With
/// tracing runtime-disabled (the default) a span is one load+branch and a
/// counter increment is one load+branch — unmeasurable next to a stencil
/// block. Compiling with TEMPEST_TRACE_DISABLED (CMake -DTEMPEST_TRACE=OFF)
/// removes even that: the instrumentation macros expand to nothing.
///
/// Sinks drain the thread-local buffers; call them from serial code (after
/// the parallel run), not from inside an instrumented region.

/// The monotonic work counters. Semantics (schedule-independent, so that
/// any two legal schedules of the same problem agree):
///   CellsUpdated          grid cells written by a stencil kernel application
///                         (elastic counts each half-step sweep; TTI counts
///                         the coupled p/q update as one cell)
///   SourcesInjected       grid-point updates applied by source injection
///                         (naive and fused paths agree whenever no two
///                         sources share a support grid point — the fused
///                         path pre-sums shared support contributions)
///   ReceiversInterpolated weight applications (receiver, support point)
///                         performed by receiver interpolation
///   BlocksExecuted        space blocks handed to a kernel
///   TilesExecuted         space-time tiles (wavefront) / triangles (diamond)
///   BandsExecuted         completed time bands of a temporally blocked run
///   HaloCellsTouched      analytic cross-stencil halo footprint of executed
///                         blocks (2R per face pair), a locality proxy
///   CheckpointBytes       bytes persisted by the checkpointer
///   AutotuneTrials        tile configurations measured by the autotuner
///   JitCompiles           JIT compiler invocations (including retries)
enum class Counter : int {
  CellsUpdated = 0,
  SourcesInjected,
  ReceiversInterpolated,
  BlocksExecuted,
  TilesExecuted,
  BandsExecuted,
  HaloCellsTouched,
  CheckpointBytes,
  AutotuneTrials,
  JitCompiles,
};
inline constexpr int kNumCounters = 10;

[[nodiscard]] const char* to_string(Counter c);

/// Global runtime switch. Disabled by default; when disabled, counters do
/// not accumulate and spans record nothing.
[[nodiscard]] bool enabled();
void set_enabled(bool on);

/// Add `delta` to counter `c` on this thread (no-op while disabled).
void count(Counter c, long long delta);

/// Aggregate value of `c` across all threads since the last reset().
[[nodiscard]] long long value(Counter c);

/// All counters at once (index by static_cast<int>(Counter)).
using CounterSnapshot = std::array<long long, kNumCounters>;
[[nodiscard]] CounterSnapshot snapshot();

/// Zero every counter and drop every recorded span on every thread, and
/// restart the trace clock.
void reset();

/// Optional span enrichment: an installed enricher is sampled at span
/// start and end, and the per-slot deltas ride in the recorded Event (and
/// from there into the sinks). The sampler runs on the span's thread —
/// tempest::perf::pmu uses this to attach per-thread hardware-counter
/// deltas to every instrumented span. slot_names/sample must have static
/// storage duration; install/clear from serial code only.
inline constexpr int kMaxSpanSlots = 12;
struct SpanEnricher {
  int n_slots = 0;                          ///< <= kMaxSpanSlots
  const char* const* slot_names = nullptr;  ///< n_slots entries
  void (*sample)(std::int64_t out[]) = nullptr;  ///< cumulative values
};

/// Install (or clear, with nullptr) the span enrichment hook.
void set_span_enricher(const SpanEnricher* enricher);
[[nodiscard]] const SpanEnricher* span_enricher();

/// Event tap: a set of raw callbacks fired synchronously on the recording
/// thread for every span boundary and counter delta — the feed the obs
/// flight recorder drinks from. Unlike the in-memory buffers the tap fires
/// even while enabled() is false, so a black box can observe a run without
/// paying for full span buffering; counters likewise accumulate whenever a
/// tap is installed. Callbacks must be wait-free-ish and reentrant-safe
/// (they run inside instrumented regions). The struct must have static
/// storage duration; install/clear from serial code only.
struct EventTap {
  void* ctx = nullptr;
  void (*span_enter)(void* ctx, const char* name, const char* cat,
                     std::int64_t arg, bool has_arg) = nullptr;
  void (*span_exit)(void* ctx, const char* name, std::int64_t start_ns,
                    std::int64_t dur_ns) = nullptr;
  void (*counter)(void* ctx, Counter c, long long delta) = nullptr;
};

/// Install (or clear, with nullptr) the event tap.
void set_event_tap(const EventTap* tap);
[[nodiscard]] const EventTap* event_tap();

/// One completed span. Names/categories are string literals at the call
/// sites (never freed, never copied on the hot path).
struct Event {
  const char* name;
  const char* cat;
  int tid;               ///< small sequential id of the recording thread
  std::int64_t ts_ns;    ///< start, ns since the last reset()
  std::int64_t dur_ns;   ///< duration in ns
  std::int64_t arg;      ///< optional argument (timestep, band end, ...)
  bool has_arg;
  int n_slots = 0;       ///< enrichment slot count (0: not enriched)
  const char* const* slot_names = nullptr;  ///< static storage
  std::array<std::int64_t, kMaxSpanSlots> slots{};  ///< per-slot deltas
};

/// RAII span: records [construction, destruction) under `name` when tracing
/// is enabled. Prefer the TEMPEST_TRACE_SPAN* macros, which compile out.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* cat);
  ScopedSpan(const char* name, const char* cat, std::int64_t arg);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  const char* cat_;
  std::int64_t start_ns_;
  std::int64_t arg_;
  bool has_arg_;
  bool active_;
  const SpanEnricher* enricher_ = nullptr;  ///< non-null: sampled at start
  const EventTap* tap_ = nullptr;           ///< non-null: fires enter/exit
  std::array<std::int64_t, kMaxSpanSlots> slot_start_{};
};

/// Snapshot of every span recorded since the last reset(), across all
/// threads, sorted by start time. Call from serial code.
[[nodiscard]] std::vector<Event> events();

/// Chrome trace_event JSON ("X" complete events + an `otherData` object
/// carrying the counter totals). Loadable in Perfetto / chrome://tracing.
void write_chrome_trace(std::ostream& os);
bool write_chrome_trace(const std::string& path);

/// Flat metrics: every counter total plus per-span-name count/total-ms
/// aggregates, as CSV (`kind,name,value` rows) or a JSON object. When any
/// recorded span carries enrichment slots the sinks emit schema v2: a
/// `schema_version` marker plus per-span-name per-slot totals (CSV rows
/// `span_pmu_<slot>,<span>,<total>`, JSON `"pmu"` objects). With no
/// enrichment the output is byte-identical to the v1 schema.
void write_metrics_csv(std::ostream& os);
void write_metrics_json(std::ostream& os);
bool write_metrics(const std::string& path);  ///< .csv -> CSV, else JSON

/// Flag-driven session for the example/bench binaries: enables tracing when
/// either path is non-empty, and writes the requested sinks (Chrome trace
/// JSON to `trace_path`, metrics to `metrics_path`) on destruction.
///
/// Crash flush: constructing a Session also arms a best-effort crash hook
/// (std::atexit plus fatal-signal handlers for SIGABRT/SIGSEGV/SIGBUS/
/// SIGFPE/SIGILL, installed only where no other handler is present so
/// sanitizer runtimes keep theirs). If the process dies before the
/// destructor runs, the hook writes whatever spans have completed — a
/// truncated-but-valid trace instead of nothing. The flush is idempotent:
/// a clean destructor pass disarms it.
class Session {
 public:
  Session(std::string trace_path, std::string metrics_path);
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

 private:
  std::string trace_path_;
  std::string metrics_path_;
};

/// Write the armed Session's sinks immediately if they have not been
/// written yet (no-op otherwise). Exposed for the crash-flush regression
/// test; called automatically from the atexit/signal hooks.
void crash_flush_now();

}  // namespace tempest::trace

// Instrumentation macros: the only spelling used at call sites, so that
// -DTEMPEST_TRACE=OFF (which defines TEMPEST_TRACE_DISABLED) removes the
// instrumentation entirely.
#define TEMPEST_TRACE_CONCAT_IMPL(a, b) a##b
#define TEMPEST_TRACE_CONCAT(a, b) TEMPEST_TRACE_CONCAT_IMPL(a, b)

#if defined(TEMPEST_TRACE_DISABLED)
#define TEMPEST_TRACE_SPAN(name, cat) ((void)0)
#define TEMPEST_TRACE_SPAN_ARG(name, cat, arg) ((void)0)
#define TEMPEST_TRACE_COUNT(counter, n) ((void)0)
#else
#define TEMPEST_TRACE_SPAN(name, cat)                                       \
  ::tempest::trace::ScopedSpan TEMPEST_TRACE_CONCAT(tempest_trace_span_,    \
                                                    __LINE__)(name, cat)
#define TEMPEST_TRACE_SPAN_ARG(name, cat, arg)                              \
  ::tempest::trace::ScopedSpan TEMPEST_TRACE_CONCAT(tempest_trace_span_,    \
                                                    __LINE__)(              \
      name, cat, static_cast<std::int64_t>(arg))
#define TEMPEST_TRACE_COUNT(counter, n)                                     \
  ::tempest::trace::count(::tempest::trace::Counter::counter,               \
                          static_cast<long long>(n))
#endif
