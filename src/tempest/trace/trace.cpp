#include "tempest/trace/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#define TEMPEST_TRACE_HAVE_SIGNALS 1
#endif

namespace tempest::trace {

namespace {

/// Per-thread buffer: counter accumulators plus completed spans. The
/// recording thread is the only writer of `events`; `mu` serialises those
/// writes against the serial-phase sinks that drain them. Counters are
/// relaxed atomics so the sinks can read them without the lock.
struct ThreadState {
  std::array<std::atomic<long long>, kNumCounters> counters{};
  std::vector<Event> events;
  std::mutex mu;
  int tid = 0;
};

/// Registry of every thread that ever traced. States are shared_ptr so a
/// thread exiting does not invalidate its (still unread) buffer.
///
/// The task-parallel engine's pool backend spawns short-lived workers (a
/// fresh team per band when OpenMP is absent), so "every thread that ever
/// traced" is unbounded over a long run. Exited threads' buffers are
/// therefore *merged on flush*: any aggregation pass folds the counters
/// and events of dead threads into the `retired` accumulators and drops
/// their states, keeping the registry bounded by the number of *live*
/// threads while totals stay exactly thread-count-invariant (a worker's
/// counts survive its thread).
struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadState>> states;
  int next_tid = 0;
  std::array<long long, kNumCounters> retired_counters{};
  std::vector<Event> retired_events;
};

Registry& registry() {
  static Registry r;
  return r;
}

/// Fold the buffers of exited threads into the retired accumulators.
/// Caller holds r.mu. A state whose only owner is the registry belongs to
/// a thread whose thread_local handle has been destroyed — no new writes
/// can arrive, so the merge is race-free.
void compact_locked(Registry& r) {
  auto dead_begin = std::partition(
      r.states.begin(), r.states.end(),
      [](const std::shared_ptr<ThreadState>& s) { return s.use_count() > 1; });
  for (auto it = dead_begin; it != r.states.end(); ++it) {
    ThreadState& s = **it;
    const std::lock_guard<std::mutex> state_lock(s.mu);
    for (int c = 0; c < kNumCounters; ++c) {
      r.retired_counters[static_cast<std::size_t>(c)] +=
          s.counters[static_cast<std::size_t>(c)].load(
              std::memory_order_relaxed);
    }
    r.retired_events.insert(r.retired_events.end(), s.events.begin(),
                            s.events.end());
  }
  r.states.erase(dead_begin, r.states.end());
}

ThreadState& local_state() {
  thread_local std::shared_ptr<ThreadState> state = [] {
    auto s = std::make_shared<ThreadState>();
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    s->tid = r.next_tid++;
    r.states.push_back(s);
    return s;
  }();
  return *state;
}

std::atomic<bool> g_enabled{false};
std::atomic<std::int64_t> g_epoch_ns{0};
std::atomic<const SpanEnricher*> g_enricher{nullptr};
std::atomic<const EventTap*> g_tap{nullptr};

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::int64_t now_ns() { return steady_ns() - g_epoch_ns.load(std::memory_order_relaxed); }

/// JSON string escape for names (call-site literals, but keep it correct).
void write_json_string(std::ostream& os, const char* s) {
  os << '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
             << "0123456789abcdef"[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Per-span-name aggregate used by the flat metrics sinks.
struct SpanAggregate {
  long long count = 0;
  std::int64_t total_ns = 0;
  int n_slots = 0;  ///< >0 when at least one span carried enrichment
  const char* const* slot_names = nullptr;
  std::array<std::int64_t, kMaxSpanSlots> slots{};
};

std::map<std::string, SpanAggregate> aggregate_spans() {
  std::map<std::string, SpanAggregate> agg;
  for (const Event& e : events()) {
    SpanAggregate& a = agg[e.name];
    a.count += 1;
    a.total_ns += e.dur_ns;
    if (e.n_slots > 0) {
      a.n_slots = e.n_slots;
      a.slot_names = e.slot_names;
      for (int i = 0; i < e.n_slots; ++i) {
        a.slots[static_cast<std::size_t>(i)] +=
            e.slots[static_cast<std::size_t>(i)];
      }
    }
  }
  return agg;
}

bool any_enriched(const std::map<std::string, SpanAggregate>& agg) {
  for (const auto& [name, a] : agg) {
    if (a.n_slots > 0) return true;
  }
  return false;
}

}  // namespace

const char* to_string(Counter c) {
  switch (c) {
    case Counter::CellsUpdated: return "cells_updated";
    case Counter::SourcesInjected: return "sources_injected";
    case Counter::ReceiversInterpolated: return "receivers_interpolated";
    case Counter::BlocksExecuted: return "blocks_executed";
    case Counter::TilesExecuted: return "tiles_executed";
    case Counter::BandsExecuted: return "bands_executed";
    case Counter::HaloCellsTouched: return "halo_cells_touched";
    case Counter::CheckpointBytes: return "checkpoint_bytes";
    case Counter::AutotuneTrials: return "autotune_trials";
    case Counter::JitCompiles: return "jit_compiles";
  }
  return "?";
}

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

void count(Counter c, long long delta) {
  if (delta == 0) return;
  // A tap keeps the counters live even while full tracing is off, so an
  // obs-only run (flight recorder / OpenMetrics, no Chrome trace) still
  // produces real work totals.
  const EventTap* tap = g_tap.load(std::memory_order_acquire);
  if (!enabled() && tap == nullptr) return;
  local_state().counters[static_cast<std::size_t>(c)].fetch_add(
      delta, std::memory_order_relaxed);
  if (tap != nullptr && tap->counter != nullptr) {
    tap->counter(tap->ctx, c, delta);
  }
}

long long value(Counter c) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  compact_locked(r);
  long long total = r.retired_counters[static_cast<std::size_t>(c)];
  for (const auto& s : r.states) {
    total += s->counters[static_cast<std::size_t>(c)].load(
        std::memory_order_relaxed);
  }
  return total;
}

CounterSnapshot snapshot() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  compact_locked(r);
  CounterSnapshot out = r.retired_counters;
  for (const auto& s : r.states) {
    for (int c = 0; c < kNumCounters; ++c) {
      out[static_cast<std::size_t>(c)] +=
          s->counters[static_cast<std::size_t>(c)].load(
              std::memory_order_relaxed);
    }
  }
  return out;
}

void reset() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& s : r.states) {
    const std::lock_guard<std::mutex> state_lock(s->mu);
    for (auto& c : s->counters) c.store(0, std::memory_order_relaxed);
    s->events.clear();
  }
  r.retired_counters.fill(0);
  r.retired_events.clear();
  g_epoch_ns.store(steady_ns(), std::memory_order_relaxed);
}

ScopedSpan::ScopedSpan(const char* name, const char* cat)
    : name_(name), cat_(cat), start_ns_(0), arg_(0), has_arg_(false),
      active_(enabled()) {
  tap_ = g_tap.load(std::memory_order_acquire);
  if (active_ || tap_ != nullptr) {
    if (active_) {
      enricher_ = g_enricher.load(std::memory_order_acquire);
      if (enricher_ != nullptr) enricher_->sample(slot_start_.data());
    }
    if (tap_ != nullptr && tap_->span_enter != nullptr) {
      tap_->span_enter(tap_->ctx, name_, cat_, arg_, has_arg_);
    }
    start_ns_ = now_ns();
  }
}

ScopedSpan::ScopedSpan(const char* name, const char* cat, std::int64_t arg)
    : name_(name), cat_(cat), start_ns_(0), arg_(arg), has_arg_(true),
      active_(enabled()) {
  tap_ = g_tap.load(std::memory_order_acquire);
  if (active_ || tap_ != nullptr) {
    if (active_) {
      enricher_ = g_enricher.load(std::memory_order_acquire);
      if (enricher_ != nullptr) enricher_->sample(slot_start_.data());
    }
    if (tap_ != nullptr && tap_->span_enter != nullptr) {
      tap_->span_enter(tap_->ctx, name_, cat_, arg_, has_arg_);
    }
    start_ns_ = now_ns();
  }
}

ScopedSpan::~ScopedSpan() {
  if (!active_ && tap_ == nullptr) return;
  const std::int64_t end = now_ns();
  if (tap_ != nullptr && tap_->span_exit != nullptr) {
    tap_->span_exit(tap_->ctx, name_, start_ns_, end - start_ns_);
  }
  if (!active_) return;
  Event ev{name_, cat_, 0, start_ns_, end - start_ns_, arg_, has_arg_};
  if (enricher_ != nullptr) {
    std::array<std::int64_t, kMaxSpanSlots> now{};
    enricher_->sample(now.data());
    ev.n_slots = std::min(enricher_->n_slots, kMaxSpanSlots);
    ev.slot_names = enricher_->slot_names;
    for (int i = 0; i < ev.n_slots; ++i) {
      ev.slots[static_cast<std::size_t>(i)] =
          std::max<std::int64_t>(0, now[static_cast<std::size_t>(i)] -
                                        slot_start_[static_cast<std::size_t>(i)]);
    }
  }
  ThreadState& s = local_state();
  const std::lock_guard<std::mutex> lock(s.mu);
  ev.tid = s.tid;
  s.events.push_back(ev);
}

void set_span_enricher(const SpanEnricher* enricher) {
  g_enricher.store(enricher, std::memory_order_release);
}

const SpanEnricher* span_enricher() {
  return g_enricher.load(std::memory_order_acquire);
}

void set_event_tap(const EventTap* tap) {
  g_tap.store(tap, std::memory_order_release);
}

const EventTap* event_tap() {
  return g_tap.load(std::memory_order_acquire);
}

std::vector<Event> events() {
  std::vector<Event> out;
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  compact_locked(r);
  out = r.retired_events;
  for (const auto& s : r.states) {
    const std::lock_guard<std::mutex> state_lock(s->mu);
    out.insert(out.end(), s->events.begin(), s->events.end());
  }
  std::sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
    return a.ts_ns != b.ts_ns ? a.ts_ns < b.ts_ns : a.tid < b.tid;
  });
  return out;
}

void write_chrome_trace(std::ostream& os) {
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const Event& e : events()) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":";
    write_json_string(os, e.name);
    os << ",\"cat\":";
    write_json_string(os, e.cat);
    // Chrome trace timestamps are microseconds; keep ns precision via the
    // fractional part.
    os << ",\"ph\":\"X\",\"pid\":1,\"tid\":" << e.tid
       << ",\"ts\":" << static_cast<double>(e.ts_ns) / 1e3
       << ",\"dur\":" << static_cast<double>(e.dur_ns) / 1e3;
    if (e.has_arg || e.n_slots > 0) {
      os << ",\"args\":{";
      bool first_arg = true;
      if (e.has_arg) {
        os << "\"t\":" << e.arg;
        first_arg = false;
      }
      for (int i = 0; i < e.n_slots; ++i) {
        if (!first_arg) os << ",";
        first_arg = false;
        write_json_string(os, e.slot_names[i]);
        os << ":" << e.slots[static_cast<std::size_t>(i)];
      }
      os << "}";
    }
    os << "}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{";
  const CounterSnapshot counters = snapshot();
  for (int c = 0; c < kNumCounters; ++c) {
    if (c != 0) os << ",";
    write_json_string(os, to_string(static_cast<Counter>(c)));
    os << ":" << counters[static_cast<std::size_t>(c)];
  }
  os << "}}\n";
}

bool write_chrome_trace(const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  write_chrome_trace(os);
  return static_cast<bool>(os);
}

void write_metrics_csv(std::ostream& os) {
  const std::map<std::string, SpanAggregate> agg = aggregate_spans();
  os << "kind,name,value\n";
  // Schema marker only in v2 (enriched) mode: the v1 byte stream is a
  // golden-test contract.
  if (any_enriched(agg)) os << "schema,version,2\n";
  const CounterSnapshot counters = snapshot();
  for (int c = 0; c < kNumCounters; ++c) {
    os << "counter," << to_string(static_cast<Counter>(c)) << ","
       << counters[static_cast<std::size_t>(c)] << "\n";
  }
  for (const auto& [name, a] : agg) {
    os << "span_count," << name << "," << a.count << "\n";
    os << "span_ms," << name << ","
       << static_cast<double>(a.total_ns) / 1e6 << "\n";
    for (int i = 0; i < a.n_slots; ++i) {
      os << "span_pmu_" << a.slot_names[i] << "," << name << ","
         << a.slots[static_cast<std::size_t>(i)] << "\n";
    }
  }
}

void write_metrics_json(std::ostream& os) {
  const std::map<std::string, SpanAggregate> agg = aggregate_spans();
  os << "{";
  if (any_enriched(agg)) os << "\"schema_version\":2,";
  os << "\"counters\":{";
  const CounterSnapshot counters = snapshot();
  for (int c = 0; c < kNumCounters; ++c) {
    if (c != 0) os << ",";
    write_json_string(os, to_string(static_cast<Counter>(c)));
    os << ":" << counters[static_cast<std::size_t>(c)];
  }
  os << "},\"spans\":{";
  bool first = true;
  for (const auto& [name, a] : agg) {
    if (!first) os << ",";
    first = false;
    write_json_string(os, name.c_str());
    os << ":{\"count\":" << a.count
       << ",\"total_ms\":" << static_cast<double>(a.total_ns) / 1e6;
    if (a.n_slots > 0) {
      os << ",\"pmu\":{";
      for (int i = 0; i < a.n_slots; ++i) {
        if (i != 0) os << ",";
        write_json_string(os, a.slot_names[i]);
        os << ":" << a.slots[static_cast<std::size_t>(i)];
      }
      os << "}";
    }
    os << "}";
  }
  os << "}}\n";
}

bool write_metrics(const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  const bool csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  if (csv) {
    write_metrics_csv(os);
  } else {
    write_metrics_json(os);
  }
  return static_cast<bool>(os);
}

namespace {

/// Crash-flush state for the armed Session. Paths are written once at arm
/// time (before any fault can fire the hooks) and only cleared after the
/// flushed flag is already set, so the handlers never race a mutation.
struct CrashFlush {
  std::string trace_path;
  std::string metrics_path;
  std::atomic<bool> flushed{true};  ///< true: nothing (left) to write
  bool hooks_installed = false;
};

CrashFlush& crash_flush_state() {
  static CrashFlush cf;
  return cf;
}

#if defined(TEMPEST_TRACE_HAVE_SIGNALS)
void crash_signal_handler(int sig) {
  // Best-effort: ofstream is not async-signal-safe, but for the fatal
  // signals we install on (and only where no other runtime claimed the
  // signal) a truncated-but-valid trace beats certain loss. The flushed
  // exchange in crash_flush_now() makes a double fault inside the flush
  // fall straight through to the re-raise.
  crash_flush_now();
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}
#endif

/// Install the atexit + fatal-signal hooks, once per process. A signal
/// handler is installed only where the current disposition is the default
/// one — sanitizer runtimes (ASan's SEGV machinery) and application
/// handlers keep theirs.
void install_crash_hooks() {
  CrashFlush& cf = crash_flush_state();
  if (cf.hooks_installed) return;
  cf.hooks_installed = true;
  std::atexit([] { crash_flush_now(); });
#if defined(TEMPEST_TRACE_HAVE_SIGNALS)
  const int fatal[] = {SIGABRT, SIGSEGV, SIGBUS, SIGFPE, SIGILL};
  for (const int sig : fatal) {
    struct sigaction current {};
    if (sigaction(sig, nullptr, &current) != 0) continue;
    const bool is_default = (current.sa_flags & SA_SIGINFO) == 0 &&
                            current.sa_handler == SIG_DFL;
    if (!is_default) continue;
    struct sigaction action {};
    action.sa_handler = crash_signal_handler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;
    sigaction(sig, &action, nullptr);
  }
#endif
}

}  // namespace

void crash_flush_now() {
  CrashFlush& cf = crash_flush_state();
  if (cf.flushed.exchange(true, std::memory_order_acq_rel)) return;
  if (!cf.trace_path.empty()) write_chrome_trace(cf.trace_path);
  if (!cf.metrics_path.empty()) write_metrics(cf.metrics_path);
}

Session::Session(std::string trace_path, std::string metrics_path)
    : trace_path_(std::move(trace_path)),
      metrics_path_(std::move(metrics_path)) {
  if (!trace_path_.empty() || !metrics_path_.empty()) {
    reset();
    set_enabled(true);
    CrashFlush& cf = crash_flush_state();
    cf.trace_path = trace_path_;
    cf.metrics_path = metrics_path_;
    install_crash_hooks();
    cf.flushed.store(false, std::memory_order_release);
  }
}

Session::~Session() {
  // Disarm the crash hook before writing: the destructor pass is the
  // complete one, and a subsequent atexit flush must not overwrite it.
  crash_flush_state().flushed.store(true, std::memory_order_release);
  if (!trace_path_.empty()) write_chrome_trace(trace_path_);
  if (!metrics_path_.empty()) write_metrics(metrics_path_);
}

}  // namespace tempest::trace
