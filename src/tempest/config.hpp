#pragma once

namespace tempest {

/// Field scalar type. The paper models wave propagation in single precision;
/// coefficient generation and verification run in double.
using real_t = float;

}  // namespace tempest
