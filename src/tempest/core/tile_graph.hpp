#pragma once

// engine::TileGraph — the bridge from the analysis:: dependence machinery to
// task-parallel schedule execution. PR 5 made the paper's legality argument a
// machine-checked theorem (every dependence distance of the canonical fused
// nest is bounded by slope*dt); this layer consumes those same distance
// vectors and maps them onto *task dependence edges* between space-time
// tiles, so the wavefront/diamond bands can run as a DAG of OpenMP tasks (or
// the portable pool — see util/threads.hpp) instead of a serial tile loop.
//
// The theorem that makes the mapping small: skew by `slope` grid points per
// substep and consider any dependence (src substep s, dst substep s+dt,
// spatial distance d with |d| <= reach <= slope*dt). The skewed offset of
// the dst point relative to the src point is d + slope*dt, which lies in
// [slope*dt - reach, slope*dt + reach] — componentwise NON-NEGATIVE. Every
// dependence the legality verifier accepts therefore points from a tile to
// itself or to a tile with componentwise greater-or-equal (x', y') indices.
// Tiles execute their substep range atomically with t ascending, so:
//   * same-tile dependences are respected by the in-tile t order;
//   * cross-tile dependences are respected by ANY execution order that runs
//     tile (i', j') after every tile (i, j) with i <= i', j <= j' — and the
//     staircase generating set {(i-1, j) -> (i, j), (i, j-1) -> (i, j)}
//     enforces exactly that transitively, with at most two predecessors per
//     task (what OpenMP 4.5's fixed-arity depend clauses can express);
//   * dependences with dt >= tile_t cross the band barrier (bands are
//     serial).
// Diamond bands get the analogous two-predecessor graph: peaks are mutually
// independent, each valley waits for its two adjacent peaks (legal because
// width >= 2*slope*height keeps every valley read inside those peaks).
//
// Two residual conflicts survive the skew argument and are handled by the
// engine rather than by edges:
//   * receiver gathers accumulate into rec[t][r] from many columns — an
//     output dependence the access model cannot bound (r is indirected).
//     TileGraph reports needs_staged_gather(); the engine then *stages*
//     per-point samples (each (t, id) written by exactly one tile) and
//     reduces them in ascending id order at the band barrier, making the
//     gather bitwise identical at every thread count;
//   * a kernel whose write footprint leaves the iteration point would make
//     adjacent tiles race regardless of the read-side skew; derive()
//     rejects write_radius > 0.

#include <string>
#include <vector>

#include "tempest/analysis/legality.hpp"
#include "tempest/core/diamond.hpp"
#include "tempest/core/wavefront.hpp"
#include "tempest/grid/blocks.hpp"
#include "tempest/grid/extents.hpp"
#include "tempest/trace/trace.hpp"
#include "tempest/util/threads.hpp"

namespace tempest::core::engine {

/// One inter-tile dependence edge in tile-lattice units: the executing tile
/// must wait for the tile `dx` behind in x' and `dy` behind in y' (both
/// >= 0; (0,0) edges are in-tile and carry no task ordering).
struct TileEdge {
  int dx = 0;
  int dy = 0;

  friend bool operator==(const TileEdge&, const TileEdge&) = default;
};

class TileGraph {
 public:
  /// Derive the inter-tile task-dependence structure for a temporally
  /// blocked tiling of `kernel`'s canonical stage-2 (fused + compressed)
  /// nest. Runs the schedule-legality verifier on the nest's dependence
  /// graph first — an illegal schedule throws ScheduleLegalityError before
  /// any task is created — then quantizes every accepted distance vector
  /// into tile-lattice edges. `sched.kind` selects the band family
  /// (Wavefront/Fused or Diamond). `verify = false` skips the legality
  /// gate (the executor's escape hatch for runs that disabled
  /// verify_schedule) but still derives the edges.
  [[nodiscard]] static TileGraph derive(const analysis::AccessSummary& kernel,
                                        const analysis::ScheduleDescriptor& sched,
                                        bool sources, bool receivers,
                                        const TileSpec& tiles,
                                        bool verify = true);

  /// The distinct cross-tile edges derived from the dependence graph
  /// (componentwise >= 0 by the skew theorem, deduplicated, (0,0) dropped).
  [[nodiscard]] const std::vector<TileEdge>& edges() const { return edges_; }

  /// Maximum tiles-behind reach along x'/y' within one band — every derived
  /// edge satisfies dx <= reach_x(), dy <= reach_y(). The staircase covers
  /// any reach transitively; these exist for introspection and tests.
  [[nodiscard]] int reach_x() const { return reach_x_; }
  [[nodiscard]] int reach_y() const { return reach_y_; }

  /// True when the nest contains a cross-column accumulation into a
  /// non-grid table (the receiver gather): the engine must stage samples
  /// and reduce at the band barrier instead of accumulating from tiles.
  [[nodiscard]] bool needs_staged_gather() const { return staged_gather_; }

  /// The wavefront band task graph for an ni x nj tile lattice: node
  /// ix*nj + iy is tile (ix, iy); staircase predecessor edges; ascending
  /// node order equals the serial reference tile order (x' outer, y'
  /// inner).
  [[nodiscard]] util::TaskDag band_dag(int ni, int nj) const;

  /// The diamond band task graph for `periods` x-periods: nodes
  /// [0, periods) are peaks (no predecessors), node periods + k is the
  /// valley between peak k and peak k+1 (its two predecessors; the last
  /// valley wraps to the final peak only).
  [[nodiscard]] static util::TaskDag diamond_band_dag(int periods);

  /// Human-readable one-liner for logs/tests.
  [[nodiscard]] std::string str() const;

 private:
  std::vector<TileEdge> edges_;
  int reach_x_ = 0;
  int reach_y_ = 0;
  bool staged_gather_ = false;
  analysis::ScheduleDescriptor sched_{};
};

/// Task-parallel wave-front temporal blocking: the same band geometry as
/// core::run_wavefront, but the (x', y') tile lattice of each band executes
/// as a TaskDag under `threads` workers honoring `graph`'s staircase edges.
/// With threads == 1 this degenerates to the exact serial reference order.
/// Within a tile, timesteps run innermost and the tile's space blocks run
/// serially — parallelism lives at tile granularity, where the dependence
/// edges are.
template <typename BlockFn, typename BandFn = NoBandCallback>
void run_wavefront_tasks(const grid::Extents3& e, int t_begin, int t_end,
                         int slope, const TileSpec& spec,
                         const TileGraph& graph, int threads, BlockFn&& fn,
                         BandFn&& on_band = BandFn{}) {
  TEMPEST_REQUIRE(spec.valid());
  TEMPEST_REQUIRE_MSG(slope >= 0, "skew slope must be non-negative");
  for (int tt = t_begin; tt < t_end; tt += spec.tile_t) {
    const int te = std::min(tt + spec.tile_t, t_end);
    TEMPEST_TRACE_SPAN_ARG("wavefront.band", "schedule", te);
    const int xs_begin = (slope * tt) / spec.tile_x * spec.tile_x;
    const int xs_end = e.nx + slope * (te - 1);
    const int ys_begin = (slope * tt) / spec.tile_y * spec.tile_y;
    const int ys_end = e.ny + slope * (te - 1);
    const int ni = (xs_end - xs_begin + spec.tile_x - 1) / spec.tile_x;
    const int nj = (ys_end - ys_begin + spec.tile_y - 1) / spec.tile_y;

    const util::TaskDag dag = graph.band_dag(ni, nj);
    dag.run(threads, [&](int node) {
      const int ix = node / nj;
      const int iy = node % nj;
      const int xs = xs_begin + ix * spec.tile_x;
      const int ys = ys_begin + iy * spec.tile_y;
      bool tile_did_work = false;
      for (int t = tt; t < te; ++t) {
        const grid::Range xr = grid::intersect(
            grid::Range{xs - slope * t, xs + spec.tile_x - slope * t},
            grid::Range{0, e.nx});
        const grid::Range yr = grid::intersect(
            grid::Range{ys - slope * t, ys + spec.tile_y - slope * t},
            grid::Range{0, e.ny});
        if (xr.empty() || yr.empty()) continue;
        tile_did_work = true;

        const grid::Box3 rect{xr, yr, {0, e.nz}};
        const auto blocks =
            grid::decompose_xy(rect, spec.block_x, spec.block_y);
        TEMPEST_TRACE_COUNT(BlocksExecuted, blocks.size());
        for (const grid::Box3& block : blocks) fn(t, block);
      }
      if (tile_did_work) TEMPEST_TRACE_COUNT(TilesExecuted, 1);
    });
    TEMPEST_TRACE_COUNT(BandsExecuted, 1);
    on_band(te);
  }
}

/// Task-parallel diamond temporal blocking: same band geometry as
/// core::run_diamond, but each band's peak/valley triangles execute as a
/// TaskDag (peaks independent, valleys gated on their two adjacent peaks)
/// instead of two barrier phases — valleys start as soon as their own
/// neighbourhood is ready.
template <typename BlockFn, typename BandFn = NoBandCallback>
void run_diamond_tasks(const grid::Extents3& e, int t_begin, int t_end,
                       int slope, const DiamondSpec& spec, int threads,
                       BlockFn&& fn, BandFn&& on_band = BandFn{}) {
  TEMPEST_REQUIRE(slope >= 0);
  TEMPEST_REQUIRE_MSG(spec.valid_for(slope),
                      "diamond width must be >= 2*slope*height");
  const int W = spec.width;
  const int first_base = -W;
  // Peak bases: first_base, first_base + W, ..., < e.nx + W.
  const int periods = (e.nx + W - first_base + W - 1) / W;

  auto emit_range = [&](int t, int xlo, int xhi) {
    const grid::Range xr =
        grid::intersect(grid::Range{xlo, xhi}, grid::Range{0, e.nx});
    if (xr.empty()) return;
    const grid::Box3 rect{xr, {0, e.ny}, {0, e.nz}};
    const auto blocks = grid::decompose_xy(rect, spec.block_x, spec.block_y);
    TEMPEST_TRACE_COUNT(TilesExecuted, 1);
    TEMPEST_TRACE_COUNT(BlocksExecuted, blocks.size());
    for (const grid::Box3& block : blocks) fn(t, block);
  };

  for (int t0 = t_begin; t0 < t_end; t0 += spec.height) {
    const int te = std::min(t0 + spec.height, t_end);
    TEMPEST_TRACE_SPAN_ARG("diamond.band", "schedule", te);
    const util::TaskDag dag = TileGraph::diamond_band_dag(periods);
    dag.run(threads, [&](int node) {
      if (node < periods) {
        // Peak k: the contracting triangle at base = first_base + k*W.
        const int base = first_base + node * W;
        for (int t = t0; t < te; ++t) {
          const int shrink = slope * (t - t0);
          emit_range(t, base + shrink, base + W - shrink);
        }
      } else {
        // Valley k: the expanding triangle at the right edge of peak k.
        const int base = first_base + (node - periods) * W;
        for (int t = t0; t < te; ++t) {
          const int grow = slope * (t - t0);
          if (grow == 0) continue;  // zero-width at the band start
          emit_range(t, base + W - grow, base + W + grow);
        }
      }
    });
    TEMPEST_TRACE_COUNT(BandsExecuted, 1);
    on_band(te);
  }
}

}  // namespace tempest::core::engine
