#pragma once

#include <vector>

#include "tempest/config.hpp"
#include "tempest/grid/grid3.hpp"
#include "tempest/sparse/interp.hpp"
#include "tempest/sparse/series.hpp"
#include "tempest/util/align.hpp"

namespace tempest::core {

/// Steps 1–2 of the paper's precomputation (Listing 2, Fig. 5b/5c): probe
/// the sources' interpolation supports by injecting onto an empty grid, then
/// record a dense binary *source mask* SM and a *source id* volume SID
/// assigning each affected grid point a unique ascending id.
struct SourceMasks {
  grid::Grid3<unsigned char> sm;  ///< 1 where some source touches the point
  grid::Grid3<int> sid;           ///< unique ascending id, or -1
  int npts = 0;                   ///< number of affected points

  [[nodiscard]] const grid::Extents3& extents() const { return sm.extents(); }
};

/// Probe injection. Faithful to Listing 2: each source scatters a unit
/// amplitude through its interpolation weights for one timestep over an
/// empty grid; grid points left non-zero are "affected". Ids ascend in
/// x-major interior order (the paper's Fig. 5c numbering).
[[nodiscard]] SourceMasks build_source_masks(const grid::Extents3& extents,
                                             const sparse::SparseTimeSeries& src,
                                             sparse::InterpKind kind);

/// Step 3 (Listing 3, Fig. 5d): the decomposed, grid-aligned source
/// wavefields. src_dcmp[t][id] accumulates w_{s,p} * src[t][s] over every
/// source s whose support contains affected point p. After decomposition the
/// off-the-grid sources are equivalent to `npts` point sources sitting
/// exactly on grid points.
class DecomposedSource {
 public:
  DecomposedSource() = default;
  DecomposedSource(int nt, int npts)
      : nt_(nt),
        npts_(npts),
        data_(static_cast<std::size_t>(nt) * static_cast<std::size_t>(npts),
              real_t{0}) {}

  [[nodiscard]] int nt() const { return nt_; }
  [[nodiscard]] int npts() const { return npts_; }

  [[nodiscard]] real_t& at(int t, int id) {
    return data_[static_cast<std::size_t>(t) *
                     static_cast<std::size_t>(npts_) +
                 static_cast<std::size_t>(id)];
  }
  [[nodiscard]] real_t at(int t, int id) const {
    return data_[static_cast<std::size_t>(t) *
                     static_cast<std::size_t>(npts_) +
                 static_cast<std::size_t>(id)];
  }

  /// Raw time-major view (nt x npts) for generated-code consumers; null
  /// when there are no affected points.
  [[nodiscard]] const real_t* data() const {
    return data_.empty() ? nullptr : data_.data();
  }

 private:
  int nt_ = 0;
  int npts_ = 0;
  util::aligned_vector<real_t> data_;
};

[[nodiscard]] DecomposedSource decompose_sources(
    const SourceMasks& masks, const sparse::SparseTimeSeries& src,
    sparse::InterpKind kind);

/// Receiver-side analog of the decomposition: measurement interpolation is a
/// *gather*, so instead of per-point wavefields we precompute, per affected
/// grid point, the list of (receiver, weight) pairs it contributes to. The
/// fused kernel then accumulates rec[t][r] += w * u(t, point) as the
/// wave-front sweeps the point's column.
struct DecomposedReceivers {
  grid::Grid3<unsigned char> rm;  ///< binary receiver mask
  grid::Grid3<int> rid;           ///< unique ascending id, or -1
  int npts = 0;

  struct Pair {
    int receiver = 0;
    real_t weight = 0;
  };
  std::vector<int> offsets;  ///< CSR over ids: pairs[offsets[id]..offsets[id+1])
  std::vector<Pair> pairs;

  [[nodiscard]] const grid::Extents3& extents() const { return rm.extents(); }
};

[[nodiscard]] DecomposedReceivers decompose_receivers(
    const grid::Extents3& extents, const sparse::SparseTimeSeries& rec,
    sparse::InterpKind kind);

}  // namespace tempest::core
