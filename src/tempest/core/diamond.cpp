#include "tempest/core/diamond.hpp"

namespace tempest::core {

std::vector<ScheduleOp> diamond_schedule(const grid::Extents3& e, int t_begin,
                                         int t_end, int slope,
                                         const DiamondSpec& spec) {
  std::vector<ScheduleOp> ops;
  run_diamond(
      e, t_begin, t_end, slope, spec,
      [&](int t, const grid::Box3& box) { ops.push_back({t, box}); },
      /*parallel=*/false);
  return ops;
}

}  // namespace tempest::core
