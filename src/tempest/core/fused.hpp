#pragma once

#include "tempest/config.hpp"
#include "tempest/core/compress.hpp"
#include "tempest/core/precompute.hpp"
#include "tempest/grid/extents.hpp"
#include "tempest/grid/grid3.hpp"
#include "tempest/trace/trace.hpp"

namespace tempest::core {

/// Step 4 of the paper (Listing 4/5): the sparse operators fused into the
/// stencil sweep. These run per (x,y) column *inside* a space block right
/// after the block's stencil update for timestep t, so every data dependency
/// they carry is aligned with the grid traversal — which is exactly what
/// legalises temporal blocking.

/// Fused, compressed source injection over the block's columns:
///   u(x,y,z_k) += src_dcmp[t][id_k] * scale(x,y,z_k)
/// `scale` is the same grid-point-local factor as sparse::inject's, keeping
/// the fused path exactly equivalent to the naive scatter.
template <typename ScaleFn>
inline void fused_inject(grid::Grid3<real_t>& u, const CompressedSparse& cs,
                         const DecomposedSource& dcmp, int t,
                         grid::Range xr, grid::Range yr, ScaleFn&& scale) {
  if (cs.empty()) return;
  long long updates = 0;
  for (int x = xr.lo; x < xr.hi; ++x) {
    for (int y = yr.lo; y < yr.hi; ++y) {
      for (const CompressedSparse::Entry& e : cs.entries(x, y)) {
        u(x, y, e.z) += dcmp.at(t, e.id) *
                        static_cast<real_t>(scale(x, y, e.z));
        ++updates;
      }
    }
  }
  TEMPEST_TRACE_COUNT(SourcesInjected, updates);
}

/// The *uncompressed* fused injection of Listing 4: the z2 loop runs over
/// the full z extent, guarded point-wise by the binary mask SM and
/// indirected through SID. Kept as the ablation of the compression step
/// (Listing 5 / Fig. 6): micro_injection measures how much the massively
/// sparse dense-scan costs relative to the packed nnz_mask/Sp_SID walk.
template <typename ScaleFn>
inline void fused_inject_dense(grid::Grid3<real_t>& u,
                               const SourceMasks& masks,
                               const DecomposedSource& dcmp, int t,
                               grid::Range xr, grid::Range yr,
                               ScaleFn&& scale) {
  const int nz = masks.extents().nz;
  long long updates = 0;
  for (int x = xr.lo; x < xr.hi; ++x) {
    for (int y = yr.lo; y < yr.hi; ++y) {
      for (int z = 0; z < nz; ++z) {
        if (masks.sm(x, y, z)) {
          u(x, y, z) += dcmp.at(t, masks.sid(x, y, z)) *
                        static_cast<real_t>(scale(x, y, z));
          ++updates;
        }
      }
    }
  }
  TEMPEST_TRACE_COUNT(SourcesInjected, updates);
}

/// Fused, compressed receiver gather over the block's columns. Receiver
/// samples accumulate contributions from every support column; columns may
/// be processed by different threads, hence the atomic update.
inline void fused_gather(const grid::Grid3<real_t>& u,
                         const CompressedSparse& cs,
                         const DecomposedReceivers& dr, real_t* rec_step,
                         grid::Range xr, grid::Range yr) {
  if (cs.empty()) return;
  long long applications = 0;
  for (int x = xr.lo; x < xr.hi; ++x) {
    for (int y = yr.lo; y < yr.hi; ++y) {
      for (const CompressedSparse::Entry& e : cs.entries(x, y)) {
        const real_t value = u(x, y, e.z);
        const int begin = dr.offsets[static_cast<std::size_t>(e.id)];
        const int end = dr.offsets[static_cast<std::size_t>(e.id) + 1];
        applications += end - begin;
        for (int k = begin; k < end; ++k) {
          const DecomposedReceivers::Pair& pr =
              dr.pairs[static_cast<std::size_t>(k)];
          const real_t contribution = pr.weight * value;
#pragma omp atomic
          rec_step[pr.receiver] += contribution;
        }
      }
    }
  }
  TEMPEST_TRACE_COUNT(ReceiversInterpolated, applications);
}

}  // namespace tempest::core
