#pragma once

#include "tempest/config.hpp"
#include "tempest/core/compress.hpp"
#include "tempest/core/precompute.hpp"
#include "tempest/grid/extents.hpp"
#include "tempest/grid/grid3.hpp"
#include "tempest/trace/trace.hpp"
#include "tempest/util/align.hpp"

namespace tempest::core {

/// Step 4 of the paper (Listing 4/5): the sparse operators fused into the
/// stencil sweep. These run per (x,y) column *inside* a space block right
/// after the block's stencil update for timestep t, so every data dependency
/// they carry is aligned with the grid traversal — which is exactly what
/// legalises temporal blocking.

/// Fused, compressed source injection over the block's columns:
///   u(x,y,z_k) += src_dcmp[t][id_k] * scale(x,y,z_k)
/// `scale` is the same grid-point-local factor as sparse::inject's, keeping
/// the fused path exactly equivalent to the naive scatter.
template <typename ScaleFn>
inline void fused_inject(grid::Grid3<real_t>& u, const CompressedSparse& cs,
                         const DecomposedSource& dcmp, int t,
                         grid::Range xr, grid::Range yr, ScaleFn&& scale) {
  if (cs.empty()) return;
  long long updates = 0;
  for (int x = xr.lo; x < xr.hi; ++x) {
    for (int y = yr.lo; y < yr.hi; ++y) {
      for (const CompressedSparse::Entry& e : cs.entries(x, y)) {
        u(x, y, e.z) += dcmp.at(t, e.id) *
                        static_cast<real_t>(scale(x, y, e.z));
        ++updates;
      }
    }
  }
  TEMPEST_TRACE_COUNT(SourcesInjected, updates);
}

/// The *uncompressed* fused injection of Listing 4: the z2 loop runs over
/// the full z extent, guarded point-wise by the binary mask SM and
/// indirected through SID. Kept as the ablation of the compression step
/// (Listing 5 / Fig. 6): micro_injection measures how much the massively
/// sparse dense-scan costs relative to the packed nnz_mask/Sp_SID walk.
template <typename ScaleFn>
inline void fused_inject_dense(grid::Grid3<real_t>& u,
                               const SourceMasks& masks,
                               const DecomposedSource& dcmp, int t,
                               grid::Range xr, grid::Range yr,
                               ScaleFn&& scale) {
  const int nz = masks.extents().nz;
  long long updates = 0;
  for (int x = xr.lo; x < xr.hi; ++x) {
    for (int y = yr.lo; y < yr.hi; ++y) {
      for (int z = 0; z < nz; ++z) {
        if (masks.sm(x, y, z)) {
          u(x, y, z) += dcmp.at(t, masks.sid(x, y, z)) *
                        static_cast<real_t>(scale(x, y, z));
          ++updates;
        }
      }
    }
  }
  TEMPEST_TRACE_COUNT(SourcesInjected, updates);
}

/// Fused, compressed receiver gather over the block's columns. Receiver
/// samples accumulate contributions from every support column; columns may
/// be processed by different threads, hence the atomic update. Atomics make
/// this race-free but NOT order-deterministic: float accumulation order
/// varies with thread interleaving, so two runs can differ in the last ulp.
/// The task-parallel engine therefore uses fused_sample + ReceiverStage +
/// reduce_receiver_stage instead (bitwise identical at any thread count);
/// this operator remains the single-pass reference/ablation.
inline void fused_gather(const grid::Grid3<real_t>& u,
                         const CompressedSparse& cs,
                         const DecomposedReceivers& dr, real_t* rec_step,
                         grid::Range xr, grid::Range yr) {
  if (cs.empty()) return;
  long long applications = 0;
  for (int x = xr.lo; x < xr.hi; ++x) {
    for (int y = yr.lo; y < yr.hi; ++y) {
      for (const CompressedSparse::Entry& e : cs.entries(x, y)) {
        const real_t value = u(x, y, e.z);
        const int begin = dr.offsets[static_cast<std::size_t>(e.id)];
        const int end = dr.offsets[static_cast<std::size_t>(e.id) + 1];
        applications += end - begin;
        for (int k = begin; k < end; ++k) {
          const DecomposedReceivers::Pair& pr =
              dr.pairs[static_cast<std::size_t>(k)];
          const real_t contribution = pr.weight * value;
#pragma omp atomic
          rec_step[pr.receiver] += contribution;
        }
      }
    }
  }
  TEMPEST_TRACE_COUNT(ReceiversInterpolated, applications);
}

/// Band-local staging buffer for the *deterministic* parallel gather.
/// samples(t, id) holds the wavefield value of affected grid point `id` at
/// timestep t of the current band. Every (t, id) cell is written by exactly
/// one tile — the one whose column set contains the point — so concurrent
/// tiles never touch the same cell and no atomics are needed; the ordered
/// reduction at the band barrier then folds the samples into the receiver
/// traces in ascending id order, the same order at every thread count.
class ReceiverStage {
 public:
  ReceiverStage() = default;
  ReceiverStage(int max_steps, int npts)
      : npts_(npts),
        samples_(static_cast<std::size_t>(max_steps) *
                 static_cast<std::size_t>(npts)) {}

  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] int npts() const { return npts_; }

  /// Reposition the buffer over timesteps [t_lo, t_lo + max_steps). No
  /// zeroing: every in-band (t, id) cell is overwritten before it is read.
  void begin_band(int t_lo) { t_lo_ = t_lo; }

  [[nodiscard]] real_t* row(int t) {
    return samples_.data() +
           static_cast<std::size_t>(t - t_lo_) * static_cast<std::size_t>(npts_);
  }
  [[nodiscard]] const real_t* row(int t) const {
    return samples_.data() +
           static_cast<std::size_t>(t - t_lo_) * static_cast<std::size_t>(npts_);
  }

 private:
  int t_lo_ = 0;
  int npts_ = 0;
  util::aligned_vector<real_t> samples_;
};

/// Tile-side half of the deterministic gather: record the block's column
/// samples into the stage row of timestep t. Pure per-point stores — each
/// id belongs to exactly one (x, y, z) column, executed by exactly one tile.
inline void fused_sample(const grid::Grid3<real_t>& u,
                         const CompressedSparse& cs, real_t* samples,
                         grid::Range xr, grid::Range yr) {
  if (cs.empty()) return;
  for (int x = xr.lo; x < xr.hi; ++x) {
    for (int y = yr.lo; y < yr.hi; ++y) {
      for (const CompressedSparse::Entry& e : cs.entries(x, y)) {
        samples[e.id] = u(x, y, e.z);
      }
    }
  }
}

/// Barrier-side half: fold one staged timestep into the receiver trace in
/// ascending affected-point id order. Serial by design — this is what makes
/// parallel gathers bitwise equal to the single-thread reference (float
/// accumulation order is fixed, independent of tile interleaving).
inline void reduce_receiver_stage(const ReceiverStage& stage,
                                  const DecomposedReceivers& dr, int t,
                                  real_t* rec_step) {
  const real_t* samples = stage.row(t);
  long long applications = 0;
  for (int id = 0; id < stage.npts(); ++id) {
    const real_t value = samples[id];
    const int begin = dr.offsets[static_cast<std::size_t>(id)];
    const int end = dr.offsets[static_cast<std::size_t>(id) + 1];
    applications += end - begin;
    for (int k = begin; k < end; ++k) {
      const DecomposedReceivers::Pair& pr =
          dr.pairs[static_cast<std::size_t>(k)];
      rec_step[pr.receiver] += pr.weight * value;
    }
  }
  TEMPEST_TRACE_COUNT(ReceiversInterpolated, applications);
}

}  // namespace tempest::core
