#include "tempest/core/compress.hpp"

#include <algorithm>

#include "tempest/trace/trace.hpp"
#include "tempest/util/error.hpp"

namespace tempest::core {

CompressedSparse::CompressedSparse(const grid::Grid3<unsigned char>& mask,
                                   const grid::Grid3<int>& ids) {
  TEMPEST_TRACE_SPAN("precompute.compress", "precompute");
  TEMPEST_REQUIRE(mask.extents() == ids.extents());
  const auto& e = mask.extents();
  nx_ = e.nx;
  ny_ = e.ny;

  offsets_.assign(static_cast<std::size_t>(nx_) * ny_ + 1, 0);

  // First pass: per-column counts (the nnz_mask of Fig. 6).
  for (int x = 0; x < e.nx; ++x) {
    for (int y = 0; y < e.ny; ++y) {
      int count = 0;
      for (int z = 0; z < e.nz; ++z) {
        if (mask(x, y, z)) ++count;
      }
      offsets_[column(x, y) + 1] = count;
      max_nnz_ = std::max(max_nnz_, count);
    }
  }
  for (std::size_t c = 1; c < offsets_.size(); ++c) {
    offsets_[c] += offsets_[c - 1];
  }

  // Second pass: packed (z, id) entries, z ascending within a column.
  data_.resize(static_cast<std::size_t>(offsets_.back()));
  for (int x = 0; x < e.nx; ++x) {
    for (int y = 0; y < e.ny; ++y) {
      std::size_t w = static_cast<std::size_t>(offsets_[column(x, y)]);
      for (int z = 0; z < e.nz; ++z) {
        if (!mask(x, y, z)) continue;
        const int id = ids(x, y, z);
        TEMPEST_REQUIRE_MSG(id >= 0, "masked point has no id");
        data_[w++] = Entry{z, id};
      }
    }
  }
}

}  // namespace tempest::core
