#pragma once

#include <vector>

#include "tempest/core/precompute.hpp"
#include "tempest/trace/trace.hpp"

namespace tempest::core {

/// Moving off-the-grid sources: the source positions change per timestep
/// (towed marine streamers, moving transducers). The paper assumes static
/// coordinates for its experiments but notes that "Devito's API can support
/// the moving sources' case, and our algorithm is independent of it" — this
/// module demonstrates that independence: the probe simply unions the
/// per-timestep supports and the decomposition scatters with per-timestep
/// weights, after which the *same* fused/compressed structures and the same
/// wave-front schedule apply unchanged.
class MovingSources {
 public:
  /// coords_per_step[t] holds the positions of all sources at timestep t;
  /// every step must have the same source count. data is time-major like
  /// SparseTimeSeries.
  MovingSources(std::vector<sparse::CoordList> coords_per_step, int nsrc);

  [[nodiscard]] int nt() const {
    return static_cast<int>(coords_.size());
  }
  [[nodiscard]] int nsrc() const { return nsrc_; }
  [[nodiscard]] const sparse::CoordList& coords(int t) const {
    return coords_[static_cast<std::size_t>(t)];
  }

  [[nodiscard]] real_t& amplitude(int t, int s) {
    return data_[static_cast<std::size_t>(t) *
                     static_cast<std::size_t>(nsrc_) +
                 static_cast<std::size_t>(s)];
  }
  [[nodiscard]] real_t amplitude(int t, int s) const {
    return data_[static_cast<std::size_t>(t) *
                     static_cast<std::size_t>(nsrc_) +
                 static_cast<std::size_t>(s)];
  }

  /// Drive every source with one wavelet (as the benchmarks do).
  void broadcast_signature(std::span<const real_t> wavelet);

  /// A straight-line tow: `n` sources start at `from` and translate to `to`
  /// over nt steps (positions stay off-the-grid throughout).
  [[nodiscard]] static MovingSources linear_tow(const sparse::Coord3& from,
                                                const sparse::Coord3& to,
                                                int n, int nt);

 private:
  std::vector<sparse::CoordList> coords_;
  int nsrc_ = 0;
  util::aligned_vector<real_t> data_;
};

/// Probe step for moving sources: the affected set is the union over all
/// timesteps of every source's support (Listing 2 run once per step).
[[nodiscard]] SourceMasks build_moving_masks(const grid::Extents3& extents,
                                             const MovingSources& src,
                                             sparse::InterpKind kind);

/// Decomposition for moving sources: src_dcmp[t][id] accumulates the
/// timestep-t interpolation weights — identical structure to the static
/// case, so fused_inject() and the wave-front schedule consume it unchanged.
[[nodiscard]] DecomposedSource decompose_moving(const SourceMasks& masks,
                                                const MovingSources& src,
                                                sparse::InterpKind kind);

/// Naive per-timestep scatter of moving sources (the baseline Listing 1
/// shape), for equivalence testing.
template <typename ScaleFn>
void inject_moving(grid::Grid3<real_t>& u, const MovingSources& src, int t,
                   sparse::InterpKind kind, ScaleFn&& scale) {
  long long updates = 0;
  for (int s = 0; s < src.nsrc(); ++s) {
    const real_t amp = src.amplitude(t, s);
    for (const sparse::SupportPoint& p :
         sparse::support(src.coords(t)[static_cast<std::size_t>(s)], kind,
                         u.extents())) {
      u(p.x, p.y, p.z) += static_cast<real_t>(p.w) * amp *
                          static_cast<real_t>(scale(p.x, p.y, p.z));
      ++updates;
    }
  }
  TEMPEST_TRACE_COUNT(SourcesInjected, updates);
}

}  // namespace tempest::core
