#include "tempest/core/precompute.hpp"

#include "tempest/trace/trace.hpp"
#include "tempest/util/error.hpp"

namespace tempest::core {

SourceMasks build_source_masks(const grid::Extents3& extents,
                               const sparse::SparseTimeSeries& src,
                               sparse::InterpKind kind) {
  TEMPEST_TRACE_SPAN("precompute.masks", "precompute");
  // Step 1 (Listing 2): unit-amplitude injection over an empty grid. Using
  // amplitude 1 instead of the real wavelet sample makes the probe
  // independent of whether the wavelet happens to be zero at the first
  // timestep (the corner case the paper works around by probing more steps).
  grid::Grid3<real_t> probe(extents, /*halo=*/0, real_t{0});
  for (int s = 0; s < src.npoints(); ++s) {
    for (const sparse::SupportPoint& p :
         sparse::support(src.coord(s), kind, extents)) {
      probe(p.x, p.y, p.z) += static_cast<real_t>(p.w);
    }
  }

  // Step 2: binary mask + unique ascending ids over non-zero probe points.
  SourceMasks masks{grid::Grid3<unsigned char>(extents, 0, 0),
                    grid::Grid3<int>(extents, 0, -1), 0};
  int next_id = 0;
  probe.for_each_interior([&](int x, int y, int z) {
    if (probe(x, y, z) != real_t{0}) {
      masks.sm(x, y, z) = 1;
      masks.sid(x, y, z) = next_id++;
    }
  });
  masks.npts = next_id;
  return masks;
}

DecomposedSource decompose_sources(const SourceMasks& masks,
                                   const sparse::SparseTimeSeries& src,
                                   sparse::InterpKind kind) {
  TEMPEST_TRACE_SPAN("precompute.decompose", "precompute");
  DecomposedSource dcmp(src.nt(), masks.npts);
  // Listing 3: indirect through SID and scatter every source's wavelet into
  // its per-affected-point wavefields.
  for (int s = 0; s < src.npoints(); ++s) {
    const auto sup = sparse::support(src.coord(s), kind, masks.extents());
    for (const sparse::SupportPoint& p : sup) {
      const int id = masks.sid(p.x, p.y, p.z);
      TEMPEST_REQUIRE_MSG(id >= 0,
                          "support point not present in probe masks");
      for (int t = 0; t < src.nt(); ++t) {
        dcmp.at(t, id) += static_cast<real_t>(p.w) * src.at(t, s);
      }
    }
  }
  return dcmp;
}

DecomposedReceivers decompose_receivers(const grid::Extents3& extents,
                                        const sparse::SparseTimeSeries& rec,
                                        sparse::InterpKind kind) {
  TEMPEST_TRACE_SPAN("precompute.receivers", "precompute");
  DecomposedReceivers out{grid::Grid3<unsigned char>(extents, 0, 0),
                          grid::Grid3<int>(extents, 0, -1),
                          0,
                          {},
                          {}};

  // Probe + id assignment, identical to the source side.
  for (int r = 0; r < rec.npoints(); ++r) {
    for (const sparse::SupportPoint& p :
         sparse::support(rec.coord(r), kind, extents)) {
      out.rm(p.x, p.y, p.z) = 1;
    }
  }
  int next_id = 0;
  out.rm.for_each_interior([&](int x, int y, int z) {
    if (out.rm(x, y, z)) out.rid(x, y, z) = next_id++;
  });
  out.npts = next_id;

  // Gather-side decomposition: per affected point, its (receiver, weight)
  // contributions, stored CSR so the fused kernel walks a contiguous list.
  std::vector<std::vector<DecomposedReceivers::Pair>> per_id(
      static_cast<std::size_t>(out.npts));
  for (int r = 0; r < rec.npoints(); ++r) {
    for (const sparse::SupportPoint& p :
         sparse::support(rec.coord(r), kind, extents)) {
      const int id = out.rid(p.x, p.y, p.z);
      per_id[static_cast<std::size_t>(id)].push_back(
          {r, static_cast<real_t>(p.w)});
    }
  }
  out.offsets.assign(static_cast<std::size_t>(out.npts) + 1, 0);
  for (int id = 0; id < out.npts; ++id) {
    out.offsets[static_cast<std::size_t>(id) + 1] =
        out.offsets[static_cast<std::size_t>(id)] +
        static_cast<int>(per_id[static_cast<std::size_t>(id)].size());
  }
  out.pairs.reserve(static_cast<std::size_t>(out.offsets.back()));
  for (const auto& lst : per_id) {
    out.pairs.insert(out.pairs.end(), lst.begin(), lst.end());
  }
  return out;
}

}  // namespace tempest::core
