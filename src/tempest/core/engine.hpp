#pragma once

// The schedule-execution engine: one generic time-loop core shared by every
// propagator. The paper's point (Section II.A) is that the probe -> mask ->
// decompose sparse precompute legalises *any* temporal-blocking schedule, so
// the schedule dispatch, the time-buffer walk, the sparse-operator wiring and
// every cross-cutting concern (trace spans, work counters, health scans,
// checkpoint semantics) live here exactly once. A physics module contributes
// only a PhysicsKernel: its field set, the per-block update and the sparse
// inject/interp bind points.
//
// Substep axis: a kernel declares kSubstepsPerStep (S). Second-order-in-time
// systems (acoustic, TTI, VTI) take S = 1; the first-order elastic system
// takes S = 2 (velocity then stress half-updates). Temporally blocked
// schedules tile the substep axis s = S*t + sub with slope = radius per
// substep — the paper's "shifted wave-front angle" for staggered multi-grid
// updates — and run the sparse operators after the last substep of each
// timestep.

#include <algorithm>
#include <array>
#include <concepts>
#include <cstdint>
#include <functional>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "tempest/analysis/legality.hpp"
#include "tempest/analysis/statics/interference.hpp"
#include "tempest/config.hpp"
#include "tempest/core/compress.hpp"
#include "tempest/core/diamond.hpp"
#include "tempest/core/fused.hpp"
#include "tempest/core/precompute.hpp"
#include "tempest/core/tile_graph.hpp"
#include "tempest/core/wavefront.hpp"
#include "tempest/grid/blocks.hpp"
#include "tempest/grid/grid3.hpp"
#include "tempest/obs/metrics.hpp"
#include "tempest/obs/recorder.hpp"
#include "tempest/resilience/checkpoint.hpp"
#include "tempest/resilience/fault.hpp"
#include "tempest/resilience/health.hpp"
#include "tempest/sparse/interp.hpp"
#include "tempest/sparse/operators.hpp"
#include "tempest/sparse/series.hpp"
#include "tempest/trace/trace.hpp"
#include "tempest/util/error.hpp"
#include "tempest/util/threads.hpp"
#include "tempest/util/timer.hpp"

namespace tempest::core::engine {

/// Execution schedule selector shared by all propagators.
enum class Schedule {
  Reference,     ///< un-blocked triple loop + naive sparse ops (validation)
  SpaceBlocked,  ///< the paper's baseline: vectorized spatial cache blocking
  Wavefront,     ///< the contribution: WTB with precomputed sparse operators
  Diamond,       ///< diamond/split temporal blocking: the alternative TB
                 ///< family the precompute scheme equally legalises
};

[[nodiscard]] constexpr const char* to_string(Schedule s) {
  switch (s) {
    case Schedule::Reference: return "reference";
    case Schedule::SpaceBlocked: return "space-blocked";
    case Schedule::Wavefront: return "wavefront";
    case Schedule::Diamond: return "diamond";
  }
  return "?";
}

/// CLI-facing inverse of to_string (accepts the underscore spelling too).
[[nodiscard]] inline Schedule schedule_from_string(const std::string& name) {
  if (name == "reference") return Schedule::Reference;
  if (name == "space-blocked" || name == "space_blocked" ||
      name == "spaceblocked") {
    return Schedule::SpaceBlocked;
  }
  if (name == "wavefront") return Schedule::Wavefront;
  if (name == "diamond") return Schedule::Diamond;
  TEMPEST_REQUIRE_MSG(false, "unknown schedule '" + name +
                                 "' (expected reference, space-blocked, "
                                 "wavefront or diamond)");
  return Schedule::Reference;  // unreachable
}

/// Wall-clock and throughput accounting for one propagation run.
struct RunStats {
  double seconds = 0.0;             ///< time loop only
  double precompute_seconds = 0.0;  ///< sparse-operator precompute (TB only)
  long long point_updates = 0;      ///< grid-point updates performed

  [[nodiscard]] double gpoints_per_s() const {
    return seconds > 0.0 ? static_cast<double>(point_updates) / seconds / 1e9
                         : 0.0;
  }
};

/// Called after timestep `t_done` is fully computed (stencil + sparse
/// operators). Only meaningful for schedules with a global time barrier —
/// under temporal blocking no instant exists at which a whole timestep is
/// complete (that is the very point of the paper), so passing a callback
/// with Wavefront/Diamond is rejected.
using StepCallback = std::function<void(int t_done)>;

/// Propagator tuning knobs shared by all kernels.
struct ExecutionOptions {
  core::TileSpec tiles{};
  sparse::InterpKind interp = sparse::InterpKind::Trilinear;
  double dt = 0.0;  ///< timestep (ms); 0 selects the model's critical dt

  /// Worker threads for the parallel schedules: 0 defers to
  /// $TEMPEST_THREADS, then to the OpenMP runtime default (1 when the
  /// runtime is absent). 1 always takes the deterministic serial path.
  /// Results are bitwise identical at every value — wavefront/diamond
  /// bands run as dependence-ordered tasks over disjoint tiles, gathers
  /// reduce in fixed point order at band barriers, and injection is
  /// color-partitioned — so this is purely a throughput knob.
  int threads = 0;

  /// Numerical health monitoring (NaN/Inf and energy blow-up scans).
  /// Disabled by default; when enabled, barrier schedules scan every
  /// `check_every` steps and temporally blocked schedules scan at time-band
  /// boundaries — the only instants a whole timestep exists under blocking.
  resilience::HealthPolicy health{};

  /// Run the analysis:: schedule-legality verifier before every temporally
  /// blocked execution (see analysis/legality.hpp): the canonical fused
  /// nest the executor implements, checked against the kernel's *declared*
  /// access summary and the engine's actual skew slope. Catches a kernel
  /// whose declared dependency radius outruns the wave-front skew before a
  /// single wrong cell is computed. Costs microseconds per run. Also gates
  /// the statics tile-interference prover: before a temporally blocked run
  /// starts, every unordered tile pair of the band DAG is proven to have
  /// disjoint write/write and write/read footprints (the race-freedom the
  /// TSan lane observes dynamically, as a pre-run theorem).
  bool verify_schedule = true;

  /// Let a spec whose dt exceeds the static von Neumann bound through the
  /// stability gates (deliberate divergence experiments). Every other
  /// statics check still runs.
  bool allow_unstable = false;
};

/// A kernel's injection targets for one timestep (e.g. p and q for the
/// coupled anisotropic systems, the three diagonal stresses for elastic).
struct FieldRefs {
  std::array<grid::Grid3<real_t>*, 4> field{};
  int count = 0;
};

/// A named wavefield the health monitor scans (and the fault-injection
/// hook poisons — always the first entry).
struct NamedField {
  const char* name = nullptr;
  grid::Grid3<real_t>* field = nullptr;
};

struct HealthFields {
  std::array<NamedField, 4> field{};
  int count = 0;
};

/// What a physics module must provide to route through the executor. The
/// executor owns the time loop and all bookkeeping; the kernel owns the
/// arithmetic and knows which grid each sparse operator binds to.
template <typename K>
concept PhysicsKernel =
    requires(K k, const K ck, int s, const grid::Box3& box) {
      /// Substeps per timestep: 1 for second-order-in-time systems, 2 for
      /// the first-order velocity–stress half-updates.
      { K::kSubstepsPerStep } -> std::convertible_to<int>;
      /// First computable timestep (1 when two back slices seed the scheme,
      /// 0 for first-order systems).
      { K::kFirstStep } -> std::convertible_to<int>;
      { ck.extents() } -> std::convertible_to<const grid::Extents3&>;
      { ck.radius() } -> std::convertible_to<int>;
      /// Hot update of one space block at substep s (= S*t + sub). Emits no
      /// counters — the executor accounts for the work.
      k.apply(s, box);
      /// Grids the source scatters into after timestep t's last substep.
      { k.inject_fields(s) } -> std::same_as<FieldRefs>;
      /// Grid receivers interpolate from after timestep t's last substep.
      { ck.gather_field(s) } -> std::convertible_to<const grid::Grid3<real_t>&>;
      /// Grid-point-local injection factor (Devito's `src * dt^2 / m`).
      { ck.inject_scale(s, s, s) } -> std::convertible_to<real_t>;
      /// Wavefields scanned after timestep t is complete.
      { k.health_fields(s) } -> std::same_as<HealthFields>;
      /// The kernel's declared access shape (dependency radius per
      /// timestep, history depth) for the schedule-legality verifier.
      { ck.access_summary() } -> std::convertible_to<analysis::AccessSummary>;
    };

/// The single generic time-loop core. Owns schedule dispatch, tile /
/// wavefront / diamond iteration, the sparse precompute wiring, the
/// canonical placement of trace spans and work counters, the HealthMonitor
/// scan points and the run_from resume semantics — for every PhysicsKernel.
template <PhysicsKernel Kernel>
class ScheduleExecutor {
 public:
  ScheduleExecutor(Kernel& kernel, const ExecutionOptions& opts)
      : k_(kernel), opts_(opts) {}

  /// Execute timesteps [t_begin, src.nt()). State for steps < t_begin must
  /// already be in the kernel's fields (zeroed for a fresh run, or seeded
  /// from a checkpoint captured at t_begin). A resumed run reproduces the
  /// uninterrupted one bitwise under the same schedule and options.
  RunStats run_from(int t_begin, Schedule sched,
                    const sparse::SparseTimeSeries& src,
                    sparse::SparseTimeSeries* rec,
                    const StepCallback& on_step) {
    constexpr int S = Kernel::kSubstepsPerStep;
    constexpr int first = Kernel::kFirstStep;
    static_assert(S >= 1);
    const int nt = src.nt();
    TEMPEST_REQUIRE(nt >= first + 1);
    TEMPEST_REQUIRE_MSG(t_begin >= first && t_begin < nt,
                        "resume step outside the simulated time range");
    TEMPEST_REQUIRE_MSG(
        !on_step ||
            (sched != Schedule::Wavefront && sched != Schedule::Diamond),
        "per-timestep callbacks need a schedule with a global time barrier "
        "(Reference or SpaceBlocked)");
    if (rec != nullptr) {
      TEMPEST_REQUIRE(rec->nt() >= nt);
    }

    resilience::HealthMonitor monitor(opts_.health);
    const grid::Extents3& e = k_.extents();
    const int radius = k_.radius();

    auto inj_scale = [this](int x, int y, int z) {
      return k_.inject_scale(x, y, z);
    };

    // Post-step resilience hook shared by all schedules: the deterministic
    // fault-injection site first (tests arm it; disarmed it is one int
    // compare), then the wavefield health scans. Barrier schedules gate the
    // scan on the policy cadence; temporally blocked schedules scan at every
    // band boundary, the only instants a whole timestep exists.
    auto health_point = [&](int t_done, bool cadence_gated) {
      // Chaos kill site: the progress tick is where the fault plan's
      // SIGKILL lands, so a killed run dies between fully-computed
      // timesteps (barrier) or bands (temporal blocking) — the same
      // instants a production `kill -9` would interrupt.
      resilience::fault::note_progress();
      const HealthFields hf = k_.health_fields(t_done);
      if (resilience::fault::consume_wavefield_poison(t_done) &&
          hf.count > 0) {
        (*hf.field[0].field)(e.nx / 2, e.ny / 2, e.nz / 2) =
            std::numeric_limits<real_t>::quiet_NaN();
      }
      if (monitor.enabled() && (!cadence_gated || monitor.due(t_done))) {
        for (int i = 0; i < hf.count; ++i) {
          monitor.check(*hf.field[i].field, hf.field[i].name, t_done);
          // Feed the scan result to the flight recorder: a post-mortem of
          // a diverging shot shows the amplitude ramp before the throw.
          TEMPEST_OBS_HEALTH(hf.field[i].name, t_done, monitor.last_max());
        }
      }
    };

    // One block of one substep: the unit every schedule hands to the kernel,
    // and the single place the stencil work counters are emitted.
    auto substep_block = [&](int s, const grid::Box3& box) {
      TEMPEST_OBS_TIME(TileSeconds);
      TEMPEST_TRACE_COUNT(CellsUpdated, box.volume());
      TEMPEST_TRACE_COUNT(HaloCellsTouched,
                          2 * radius *
                              (box.x.length() * box.y.length() +
                               box.y.length() * box.z.length() +
                               box.x.length() * box.z.length()));
      k_.apply(s, box);
    };

    RunStats stats;
    stats.point_updates = static_cast<long long>(nt - t_begin) *
                          static_cast<long long>(e.size());

    const int threads = util::resolve_threads(opts_.threads);

    if (sched == Schedule::Wavefront || sched == Schedule::Diamond) {
      // --- The paper's scheme: precompute, fuse, compress, time-tile. The
      // same precomputed structures legalise either temporal-blocking
      // family (wave-front or diamond). ---
      //
      // The executor implements the stage-2 (fused + compressed) nest and
      // skews by `radius` per substep — slope = S * radius per timestep.
      // TileGraph re-derives the nest's dependence distance vectors,
      // verifies them against the kernel's *declared* access shape (a
      // kernel whose real dependency reach exceeded the skew would
      // silently read stale halo cells; here it throws instead — unless
      // verify_schedule was explicitly disabled), and maps them onto the
      // task-dependence edges the band executors honor.
      const analysis::ScheduleDescriptor descr =
          sched == Schedule::Wavefront
              ? analysis::ScheduleDescriptor::wavefront(
                    S * radius, std::max(1, opts_.tiles.tile_t))
              : analysis::ScheduleDescriptor::diamond(
                    S * radius, std::max(1, opts_.tiles.tile_t));
      const bool has_rec = rec != nullptr && rec->npoints() > 0;
      const TileGraph graph =
          TileGraph::derive(k_.access_summary(), descr, /*sources=*/true,
                            /*receivers=*/has_rec, opts_.tiles,
                            /*verify=*/opts_.verify_schedule);
      if (opts_.verify_schedule) {
        // Statics race prover over the same band geometry the task
        // executors below receive (substep units: slope = radius per
        // substep, band height = S * tile_t substeps). TileGraph::derive
        // verified the skew legality; this proves the *task DAG* leaves no
        // unordered tile pair with overlapping write/write or write/read
        // footprints — including the circular-buffer slot aliasing and the
        // fused receiver gather's in-rect read.
        const analysis::AccessSummary summary = k_.access_summary();
        analysis::statics::TileModel tm;
        tm.schedule =
            sched == Schedule::Wavefront
                ? analysis::ScheduleDescriptor::wavefront(
                      radius, S * std::max(1, opts_.tiles.tile_t))
                : analysis::ScheduleDescriptor::diamond(
                      radius, S * std::max(1, opts_.tiles.tile_t));
        tm.tile_x = opts_.tiles.tile_x;
        tm.tile_y = opts_.tiles.tile_y;
        tm.nx = e.nx;
        tm.ny = e.ny;
        tm.radius = radius;
        tm.time_reads = summary.time_reads;
        tm.receivers = has_rec;
        analysis::statics::require_race_free(
            analysis::statics::prove_race_free(tm));
      }
      util::Timer pre;
      const core::SourceMasks masks =
          core::build_source_masks(e, src, opts_.interp);
      const core::DecomposedSource dcmp =
          core::decompose_sources(masks, src, opts_.interp);
      const core::CompressedSparse cs_src(masks.sm, masks.sid);

      core::DecomposedReceivers drec;
      core::CompressedSparse cs_rec;
      core::ReceiverStage stage;
      if (has_rec) {
        drec = core::decompose_receivers(e, *rec, opts_.interp);
        cs_rec = core::CompressedSparse(drec.rm, drec.rid);
        // Band-local staging for the deterministic parallel gather (see
        // fused.hpp): one row per in-flight timestep of a band.
        stage = core::ReceiverStage(std::max(1, opts_.tiles.tile_t),
                                    drec.npts);
        stage.begin_band(t_begin);
      }
      stats.precompute_seconds = pre.seconds();

      // Substep block + the fused sparse operators after the timestep's
      // last substep (for S = 1 that is every substep, s == t). Runs on
      // task workers: injection writes only the block's own columns, the
      // gather *stages* per-point samples (each written by exactly one
      // tile) instead of accumulating into the shared receiver traces —
      // the accumulation happens in fixed point order at the band barrier,
      // which is what keeps every thread count bitwise identical.
      auto fused_block = [&](int s, const grid::Box3& box) {
        {
          TEMPEST_TRACE_SPAN_ARG("stencil", "compute", s);
          substep_block(s, box);
        }
        if ((s + 1) % S != 0) return;
        const int t = s / S;
        {
          TEMPEST_TRACE_SPAN_ARG("inject", "sparse", t);
          const FieldRefs targets = k_.inject_fields(t);
          for (int i = 0; i < targets.count; ++i) {
            core::fused_inject(*targets.field[i], cs_src, dcmp, t, box.x,
                               box.y, inj_scale);
          }
        }
        if (has_rec && !cs_rec.empty()) {
          TEMPEST_TRACE_SPAN_ARG("interp", "sparse", t);
          core::fused_sample(k_.gather_field(t), cs_rec, stage.row(t), box.x,
                             box.y);
        }
      };

      // Completed-band hook (serial, after the band's task graph drains):
      // after substep band [.., se), every timestep < se/S is fully
      // computed and the newest slice is fully written. Reduce the staged
      // gather samples in ascending point-id order, then run the health
      // scan — the only instants a whole timestep exists under blocking.
      int reduced_upto = t_begin;
#if !defined(TEMPEST_TRACE_DISABLED)
      // Band latency = the wall interval between successive band barriers
      // (the first one counts from loop entry). A ScopedLatency cannot
      // express this — bands overlap task execution — so the delta is taken
      // by hand at each barrier.
      std::int64_t band_start_ns = obs::now_ns();
#endif
      auto on_band = [&](int se) {
        const int t_done = se / S;
#if !defined(TEMPEST_TRACE_DISABLED)
        if (obs::enabled()) {
          const std::int64_t now = obs::now_ns();
          obs::record_ns(obs::Metric::BandSeconds, now - band_start_ns);
          band_start_ns = now;
        }
#endif
        if (has_rec && !cs_rec.empty()) {
          TEMPEST_TRACE_SPAN_ARG("interp.reduce", "sparse", t_done);
          for (int t = reduced_upto; t < t_done; ++t) {
            core::reduce_receiver_stage(stage, drec, t, rec->step(t).data());
          }
        }
        if (has_rec) stage.begin_band(t_done);
        reduced_upto = t_done;
        health_point(t_done, /*cadence_gated=*/false);
      };

      util::Timer timer;
      if (sched == Schedule::Wavefront) {
        // Tile the substep axis: tile_t full steps == S*tile_t substeps,
        // skewed by `radius` grid points per substep.
        core::TileSpec spec = opts_.tiles;
        spec.tile_t = S * opts_.tiles.tile_t;
        engine::run_wavefront_tasks(e, S * t_begin, S * nt, radius, spec,
                                    graph, threads, fused_block, on_band);
      } else {
        core::DiamondSpec dspec;
        dspec.height = S * opts_.tiles.tile_t;
        // The x period must accommodate the band's dependency cone.
        dspec.width = std::max(opts_.tiles.tile_x, 2 * radius * dspec.height);
        dspec.block_x = opts_.tiles.block_x;
        dspec.block_y = opts_.tiles.block_y;
        engine::run_diamond_tasks(e, S * t_begin, S * nt, radius, dspec,
                                  threads, fused_block, on_band);
      }
      stats.seconds = timer.seconds();
      return stats;
    }

    // --- Barrier schedules. SpaceBlocked is the paper's baseline: spatial
    // blocking + per-timestep naive sparse operators through prebuilt
    // support caches. Reference is the unblocked sweep with uncached ops. ---
    const bool blocked = sched == Schedule::SpaceBlocked;
    sparse::SupportCache src_cache;
    sparse::SupportCache rec_cache;
    sparse::ColorSets src_colors;
    if (blocked) {
      src_cache = sparse::SupportCache(src, opts_.interp, e);
      // Conflict-free color sets (see sparse/operators.hpp): sites sharing
      // a support grid point land in different layers, ordered so the
      // parallel scatter reproduces the serial accumulation order bitwise.
      src_colors = sparse::ColorSets(src_cache, e);
      if (rec != nullptr && rec->npoints() > 0) {
        rec_cache = sparse::SupportCache(*rec, opts_.interp, e);
      }
    }

    util::Timer timer;
    const auto blocks =
        blocked ? grid::decompose_xy(grid::Box3::whole(e), opts_.tiles.block_x,
                                     opts_.tiles.block_y)
                : std::vector<grid::Box3>{grid::Box3::whole(e)};
    // Reference stays a strictly serial whole-domain sweep (the validation
    // baseline); SpaceBlocked parallelizes each substep's independent
    // blocks across the resolved worker count.
    const int block_threads = blocked ? threads : 1;
    for (int t = t_begin; t < nt; ++t) {
      // Under a barrier schedule the "band" is one full timestep including
      // its sparse operators and callbacks — the unit comparable to a
      // temporally blocked band in the exported histograms.
      TEMPEST_OBS_TIME(BandSeconds);
      {
        TEMPEST_TRACE_SPAN_ARG("stencil", "compute", t);
        TEMPEST_TRACE_COUNT(BlocksExecuted, S * blocks.size());
        // Substeps are dependent (stress reads the new velocity): each is a
        // full parallel sweep of its own.
        for (int sub = 0; sub < S; ++sub) {
          const int s = S * t + sub;
          TEMPEST_OBS_TIME(SubstepSeconds);
          util::parallel_for(
              static_cast<int>(blocks.size()), block_threads,
              [&](int b) { substep_block(s, blocks[static_cast<std::size_t>(b)]); });
        }
      }
      {
        TEMPEST_TRACE_SPAN_ARG("inject", "sparse", t);
        const FieldRefs targets = k_.inject_fields(t);
        for (int i = 0; i < targets.count; ++i) {
          if (blocked) {
            sparse::inject_colored(*targets.field[i], src, t, src_cache,
                                   src_colors, block_threads, inj_scale);
          } else {
            sparse::inject(*targets.field[i], src, t, opts_.interp,
                           inj_scale);
          }
        }
      }
      if (rec != nullptr && rec->npoints() > 0) {
        TEMPEST_TRACE_SPAN_ARG("interp", "sparse", t);
        if (blocked) {
          sparse::interpolate_cached(k_.gather_field(t), *rec, t, rec_cache,
                                     block_threads);
        } else {
          sparse::interpolate(k_.gather_field(t), *rec, t, opts_.interp);
        }
      }
      health_point(t + 1, /*cadence_gated=*/true);
      if (on_step) on_step(t + 1);
    }
    stats.seconds = timer.seconds();
    return stats;
  }

 private:
  Kernel& k_;
  const ExecutionOptions& opts_;
};

/// Snapshot the propagation state after timestep `step` completed. The
/// slice list is the kernel's state in a fixed order (the same order
/// restore_state expects); the checkpoint carries copies of the slices, the
/// gather recorded so far (when `rec` is non-null) and the caller's config
/// fingerprint. `capture()`'s step is the next `run_from()`'s `t_begin`.
[[nodiscard]] inline resilience::Checkpoint capture_state(
    const std::vector<const grid::Grid3<real_t>*>& slices, int step,
    int first_step, std::uint64_t fingerprint,
    const sparse::SparseTimeSeries* rec) {
  TEMPEST_REQUIRE(step >= first_step);
  resilience::Checkpoint ck;
  ck.fingerprint = fingerprint;
  ck.step = step;
  ck.slots.reserve(slices.size());
  for (const auto* slice : slices) ck.slots.push_back(*slice);
  if (rec != nullptr) {
    ck.has_rec = true;
    ck.rec = *rec;
  }
  return ck;
}

/// Seed the kernel's state slices from a checkpoint. Throws
/// resilience::CheckpointMismatchError when the checkpoint's slice count or
/// grid geometry does not match.
inline void restore_state(const std::vector<grid::Grid3<real_t>*>& slices,
                          const resilience::Checkpoint& ck) {
  TEMPEST_REQUIRE(!slices.empty());
  const grid::Extents3& e = slices.front()->extents();
  const int halo = slices.front()->halo();
  if (ck.slots.size() != slices.size() || ck.slots.empty() ||
      ck.slots.front().extents() != e || ck.slots.front().halo() != halo) {
    std::ostringstream os;
    os << "checkpoint does not fit this propagator: it holds "
       << ck.slots.size() << " slices";
    if (!ck.slots.empty()) {
      const auto& ce = ck.slots.front().extents();
      os << " of " << ce.nx << "x" << ce.ny << "x" << ce.nz << " (halo "
         << ck.slots.front().halo() << ")";
    }
    os << ", this run needs " << slices.size() << " of " << e.nx << "x"
       << e.ny << "x" << e.nz << " (halo " << halo << ")";
    throw resilience::CheckpointMismatchError(os.str());
  }
  for (std::size_t i = 0; i < slices.size(); ++i) {
    *slices[i] = ck.slots[i];
  }
}

}  // namespace tempest::core::engine
