#include "tempest/core/wavefront.hpp"

#include <algorithm>
#include <sstream>
#include <string>

namespace tempest::core {

std::vector<ScheduleOp> wavefront_schedule(const grid::Extents3& e,
                                           int t_begin, int t_end, int slope,
                                           const TileSpec& spec) {
  std::vector<ScheduleOp> ops;
  run_wavefront(
      e, t_begin, t_end, slope, spec,
      [&](int t, const grid::Box3& box) { ops.push_back({t, box}); },
      /*parallel=*/false);
  return ops;
}

std::vector<std::pair<int, int>> wavefront_bands(int t_begin, int t_end,
                                                 int tile_t) {
  TEMPEST_REQUIRE(tile_t > 0);
  std::vector<std::pair<int, int>> bands;
  for (int tt = t_begin; tt < t_end; tt += tile_t) {
    bands.emplace_back(tt, std::min(tt + tile_t, t_end));
  }
  return bands;
}

std::vector<ScheduleOp> spaceblocked_schedule(const grid::Extents3& e,
                                              int t_begin, int t_end,
                                              const TileSpec& spec) {
  std::vector<ScheduleOp> ops;
  run_spaceblocked(
      e, t_begin, t_end, spec,
      [&](int t, const grid::Box3& box) { ops.push_back({t, box}); },
      /*parallel=*/false);
  return ops;
}

std::string validate_schedule(const grid::Extents3& e, int t_begin, int t_end,
                              int radius,
                              const std::vector<ScheduleOp>& ops) {
  // Sequence number of the op computing (t, x, y); ops always span full z,
  // so the check runs on x–y columns. -1 = not yet computed.
  const int nt = t_end - t_begin;
  if (nt <= 0) return ops.empty() ? "" : "ops scheduled for empty time range";
  const std::size_t plane = static_cast<std::size_t>(e.nx) *
                            static_cast<std::size_t>(e.ny);
  std::vector<long> seq(static_cast<std::size_t>(nt) * plane, -1);
  auto slot = [&](int t, int x, int y) -> long& {
    return seq[static_cast<std::size_t>(t - t_begin) * plane +
               static_cast<std::size_t>(x) * static_cast<std::size_t>(e.ny) +
               static_cast<std::size_t>(y)];
  };

  std::ostringstream err;

  // Pass 1: coverage and uniqueness.
  long n = 0;
  for (const ScheduleOp& op : ops) {
    if (op.t < t_begin || op.t >= t_end) {
      err << "op " << n << " has timestep " << op.t << " outside ["
          << t_begin << ", " << t_end << ")";
      return err.str();
    }
    if (op.box.z != grid::Range{0, e.nz}) {
      err << "op " << n << " does not span the full z extent";
      return err.str();
    }
    for (int x = op.box.x.lo; x < op.box.x.hi; ++x) {
      for (int y = op.box.y.lo; y < op.box.y.hi; ++y) {
        long& s = slot(op.t, x, y);
        if (s != -1) {
          err << "point (t=" << op.t << ", x=" << x << ", y=" << y
              << ") computed twice (ops " << s << " and " << n << ")";
          return err.str();
        }
        s = n;
      }
    }
    ++n;
  }
  for (int t = t_begin; t < t_end; ++t) {
    for (int x = 0; x < e.nx; ++x) {
      for (int y = 0; y < e.ny; ++y) {
        if (slot(t, x, y) == -1) {
          err << "point (t=" << t << ", x=" << x << ", y=" << y
              << ") never computed";
          return err.str();
        }
      }
    }
  }

  // Pass 2: direct flow dependencies. Op (t,p) reads the values produced by
  // ops (t-1, p+d), |d|_inf <= radius, and by op (t-2, p); transitivity of
  // the precedence order then also covers the circular-buffer
  // anti-dependencies (see wavefront_test for the argument spelled out).
  for (int t = t_begin + 1; t < t_end; ++t) {
    for (int x = 0; x < e.nx; ++x) {
      for (int y = 0; y < e.ny; ++y) {
        const long me = slot(t, x, y);
        for (int dx = -radius; dx <= radius; ++dx) {
          const int qx = x + dx;
          if (qx < 0 || qx >= e.nx) continue;
          for (int dy = -radius; dy <= radius; ++dy) {
            const int qy = y + dy;
            if (qy < 0 || qy >= e.ny) continue;
            if (slot(t - 1, qx, qy) >= me) {
              err << "flow dependency violated: (t=" << t << ", x=" << x
                  << ", y=" << y << ") ran before its input (t=" << t - 1
                  << ", x=" << qx << ", y=" << qy << ")";
              return err.str();
            }
          }
        }
        if (t - 2 >= t_begin && slot(t - 2, x, y) >= me) {
          err << "time-order-2 dependency violated at (t=" << t
              << ", x=" << x << ", y=" << y << ")";
          return err.str();
        }
      }
    }
  }
  return "";
}

}  // namespace tempest::core
