#include "tempest/core/tile_graph.hpp"

#include <algorithm>
#include <sstream>

#include "tempest/util/error.hpp"

namespace tempest::core::engine {

TileGraph TileGraph::derive(const analysis::AccessSummary& kernel,
                            const analysis::ScheduleDescriptor& sched,
                            bool sources, bool receivers,
                            const TileSpec& tiles, bool verify) {
  TEMPEST_REQUIRE(tiles.valid());
  TEMPEST_REQUIRE_MSG(sched.time_tiled(),
                      "TileGraph maps temporally blocked bands onto tasks; "
                      "barrier schedules parallelize per-step blocks instead");
  TEMPEST_REQUIRE_MSG(kernel.write_radius == 0,
                      "task-parallel tiles require a point-local write "
                      "footprint: kernel '" + kernel.kernel + "' declares "
                      "write_radius=" + std::to_string(kernel.write_radius) +
                      ", so adjacent concurrent tiles would race on the "
                      "scattered writes");

  // The exact nest the executor implements (stage 2: precomputed, fused,
  // compressed), analyzed by the same machinery that proves the schedule
  // legal. An illegal schedule throws here, before any task exists.
  const analysis::DependenceGraph g =
      analysis::canonical_dependences(kernel, /*stage=*/2, sources, receivers);
  if (verify) analysis::require_legal(analysis::verify(g, sched));

  TileGraph out;
  out.sched_ = sched;

  // Cross-column accumulations into non-grid tables (the receiver gather)
  // carry an output dependence the distance model cannot bound — the engine
  // must stage per-point samples and reduce at the band barrier.
  for (const analysis::Statement& s : g.stmts) {
    if (!s.under_time_loop) continue;
    for (const analysis::Access& a : s.accesses) {
      if (a.is_write && !a.grid) out.staged_gather_ = true;
    }
  }

  // Quantize every in-band dependence distance into tile-lattice units.
  // After require_legal: every 0 < dt < tile_t dependence has bounded
  // spatial distance <= slope*dt per tiled dim, so the skewed offset
  // d + slope*dt lies in [0, 2*slope*dt] — the source tile is behind the
  // sink tile componentwise (the skew theorem; see the header).
  auto tiles_behind = [](int behind, int tile) {
    return behind <= 0 ? 0 : (behind + tile - 1) / tile;
  };
  for (const analysis::Dependence& dep : g.deps) {
    if (dep.dt <= 0 || dep.dt >= sched.tile_t) continue;  // in-slice (reach
    // 0, program order) or across the serial band barrier.
    const int behind_x = sched.slope * dep.dt + dep.dist("x").max_abs();
    const int behind_y = sched.slope * dep.dt + dep.dist("y").max_abs();
    TileEdge edge{tiles_behind(behind_x, tiles.tile_x),
                  tiles_behind(behind_y, tiles.tile_y)};
    if (edge.dx == 0 && edge.dy == 0) continue;
    out.reach_x_ = std::max(out.reach_x_, edge.dx);
    out.reach_y_ = std::max(out.reach_y_, edge.dy);
    if (std::find(out.edges_.begin(), out.edges_.end(), edge) ==
        out.edges_.end()) {
      out.edges_.push_back(edge);
    }
  }
  return out;
}

util::TaskDag TileGraph::band_dag(int ni, int nj) const {
  TEMPEST_REQUIRE(ni >= 0 && nj >= 0);
  util::TaskDag dag(ni * nj);
  // The staircase generating set: (ix-1, iy) and (ix, iy-1). Transitive
  // closure orders every componentwise-smaller tile first, which dominates
  // every derived edge (all componentwise >= 0) at any reach.
  for (int ix = 0; ix < ni; ++ix) {
    for (int iy = 0; iy < nj; ++iy) {
      const int node = ix * nj + iy;
      if (ix > 0) dag.add_edge(node - nj, node);
      if (iy > 0) dag.add_edge(node - 1, node);
    }
  }
  return dag;
}

util::TaskDag TileGraph::diamond_band_dag(int periods) {
  TEMPEST_REQUIRE(periods >= 0);
  util::TaskDag dag(2 * periods);
  // Peaks [0, periods) have no predecessors (mutually independent
  // contracting triangles). Valley k expands from the right edge of peak k:
  // its reads stay inside peaks k and k+1 because width >= 2*slope*height.
  for (int k = 0; k < periods; ++k) {
    dag.add_edge(k, periods + k);
    if (k + 1 < periods) dag.add_edge(k + 1, periods + k);
  }
  return dag;
}

std::string TileGraph::str() const {
  std::ostringstream os;
  os << "tile-graph[" << sched_.str() << "]: edges={";
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (i > 0) os << ", ";
    os << "(" << edges_[i].dx << "," << edges_[i].dy << ")";
  }
  os << "} reach=(" << reach_x_ << "," << reach_y_ << ")"
     << (staged_gather_ ? " staged-gather" : "");
  return os.str();
}

}  // namespace tempest::core::engine
