#pragma once

#include <utility>
#include <vector>

#include "tempest/grid/blocks.hpp"
#include "tempest/grid/extents.hpp"
#include "tempest/trace/trace.hpp"
#include "tempest/util/error.hpp"

namespace tempest::core {

/// Space–time tile geometry of the wave-front temporal blocking scheme
/// (paper Section II.B / Table I). A *tile* spans tile_t timesteps and
/// tile_x × tile_y skewed spatial columns; each timestep slice of a tile is
/// further cut into block_x × block_y space blocks (the unit handed to the
/// kernel and to OpenMP). z is never tiled — it is the contiguous SIMD
/// dimension.
struct TileSpec {
  int tile_t = 8;
  int tile_x = 64;
  int tile_y = 64;
  int block_x = 8;
  int block_y = 8;

  [[nodiscard]] bool valid() const {
    return tile_t > 0 && tile_x > 0 && tile_y > 0 && block_x > 0 &&
           block_y > 0;
  }

  friend bool operator==(const TileSpec&, const TileSpec&) = default;
};

/// One scheduled kernel invocation: compute timestep `t` over `box`.
struct ScheduleOp {
  int t = 0;
  grid::Box3 box;

  friend bool operator==(const ScheduleOp&, const ScheduleOp&) = default;
};

/// Default no-op for the band-completion hook of the temporally blocked
/// runners. After a time band [tt, te) finishes, *every* timestep < te is
/// fully computed — the only global barrier temporal blocking offers, and
/// therefore the place the resilience layer runs wavefield health scans.
struct NoBandCallback {
  void operator()(int /*band_end*/) const {}
};

/// The classic (legal-by-construction) schedule: every timestep sweeps the
/// whole domain in space blocks before the next begins (paper Fig. 4a).
/// fn(t, Box3) is invoked for each block; blocks of one timestep are
/// independent and run under OpenMP.
template <typename BlockFn>
void run_spaceblocked(const grid::Extents3& e, int t_begin, int t_end,
                      const TileSpec& spec, BlockFn&& fn,
                      bool parallel = true) {
  TEMPEST_REQUIRE(spec.valid());
  const auto blocks =
      grid::decompose_xy(grid::Box3::whole(e), spec.block_x, spec.block_y);
  for (int t = t_begin; t < t_end; ++t) {
    TEMPEST_TRACE_SPAN_ARG("step", "schedule", t);
    TEMPEST_TRACE_COUNT(BlocksExecuted, blocks.size());
#pragma omp parallel for schedule(dynamic) if (parallel)
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      fn(t, blocks[b]);
    }
  }
}

/// Wave-front temporal blocking (paper Listing 6): iteration space skewed by
/// `slope` grid points per timestep (slope >= the per-timestep dependency
/// radius), then tiled rectangularly in (t, x', y') and executed tile by
/// tile, timesteps innermost. Within one timestep slice of a tile the
/// clipped rectangle is cut into space blocks executed under OpenMP.
///
/// Legality: skewing turns the stencil's flow/anti dependencies into
/// lexicographically non-negative vectors in (t, x', y'), so the sequential
/// x'-tile → y'-tile → t traversal respects them (see tests/wavefront_test
/// for the executable proof).
template <typename BlockFn, typename BandFn = NoBandCallback>
void run_wavefront(const grid::Extents3& e, int t_begin, int t_end, int slope,
                   const TileSpec& spec, BlockFn&& fn, bool parallel = true,
                   BandFn&& on_band = BandFn{}) {
  TEMPEST_REQUIRE(spec.valid());
  TEMPEST_REQUIRE_MSG(slope >= 0, "skew slope must be non-negative");
  for (int tt = t_begin; tt < t_end; tt += spec.tile_t) {
    const int te = std::min(tt + spec.tile_t, t_end);
    TEMPEST_TRACE_SPAN_ARG("wavefront.band", "schedule", te);
    // Skewed coordinates of points alive in this time band span
    // [slope*tt, extent + slope*(te-1)). Tile origins snap to multiples of
    // the tile size so tile boundaries are stable across bands.
    const int xs_begin = (slope * tt) / spec.tile_x * spec.tile_x;
    const int xs_end = e.nx + slope * (te - 1);
    const int ys_begin = (slope * tt) / spec.tile_y * spec.tile_y;
    const int ys_end = e.ny + slope * (te - 1);

    for (int xs = xs_begin; xs < xs_end; xs += spec.tile_x) {
      for (int ys = ys_begin; ys < ys_end; ys += spec.tile_y) {
        bool tile_did_work = false;
        for (int t = tt; t < te; ++t) {
          const grid::Range xr = grid::intersect(
              grid::Range{xs - slope * t, xs + spec.tile_x - slope * t},
              grid::Range{0, e.nx});
          const grid::Range yr = grid::intersect(
              grid::Range{ys - slope * t, ys + spec.tile_y - slope * t},
              grid::Range{0, e.ny});
          if (xr.empty() || yr.empty()) continue;
          tile_did_work = true;

          const grid::Box3 rect{xr, yr, {0, e.nz}};
          const auto blocks =
              grid::decompose_xy(rect, spec.block_x, spec.block_y);
          TEMPEST_TRACE_COUNT(BlocksExecuted, blocks.size());
#pragma omp parallel for schedule(dynamic) if (parallel)
          for (std::size_t b = 0; b < blocks.size(); ++b) {
            fn(t, blocks[b]);
          }
        }
        if (tile_did_work) TEMPEST_TRACE_COUNT(TilesExecuted, 1);
      }
    }
    TEMPEST_TRACE_COUNT(BandsExecuted, 1);
    on_band(te);
  }
}

/// The [begin, end) time bands run_wavefront executes for this range and
/// tile height — i.e. the instants its band-completion hook fires. Exposed
/// so consumers (health monitoring, tests) can reason about scan cadence
/// without re-deriving the banding arithmetic.
[[nodiscard]] std::vector<std::pair<int, int>> wavefront_bands(int t_begin,
                                                               int t_end,
                                                               int tile_t);

/// Materialize the exact op sequence run_wavefront would execute (blocks in
/// OpenMP groups appear in deterministic order). Used by tests to verify
/// coverage, non-duplication and dependency ordering, and by the DSL layer
/// to display schedules.
[[nodiscard]] std::vector<ScheduleOp> wavefront_schedule(
    const grid::Extents3& e, int t_begin, int t_end, int slope,
    const TileSpec& spec);

/// Same for the space-blocked baseline.
[[nodiscard]] std::vector<ScheduleOp> spaceblocked_schedule(
    const grid::Extents3& e, int t_begin, int t_end, const TileSpec& spec);

/// Check that `ops` is a legal execution order for a stencil with
/// per-timestep dependency radius `radius` on extents `e`: every point of
/// every timestep is computed exactly once, and when op i computes point
/// (t,p), every point within `radius` of p at t-1 (and p itself at t-2 for
/// the anti-dependency) appears earlier. Returns an empty string when legal,
/// else a description of the first violation. O(volume · nt) — test sizes
/// only.
[[nodiscard]] std::string validate_schedule(
    const grid::Extents3& e, int t_begin, int t_end, int radius,
    const std::vector<ScheduleOp>& ops);

}  // namespace tempest::core
