#include "tempest/core/moving.hpp"

#include <cmath>
#include <sstream>

#include "tempest/resilience/health.hpp"
#include "tempest/util/error.hpp"

namespace tempest::core {

MovingSources::MovingSources(std::vector<sparse::CoordList> coords_per_step,
                             int nsrc)
    : coords_(std::move(coords_per_step)),
      nsrc_(nsrc),
      data_(coords_.size() * static_cast<std::size_t>(nsrc), real_t{0}) {
  TEMPEST_REQUIRE(!coords_.empty() && nsrc > 0);
  for (const sparse::CoordList& c : coords_) {
    TEMPEST_REQUIRE_MSG(static_cast<int>(c.size()) == nsrc,
                        "every timestep must carry the same source count");
  }
}

void MovingSources::broadcast_signature(std::span<const real_t> wavelet) {
  TEMPEST_REQUIRE(static_cast<int>(wavelet.size()) >= nt());
  for (int t = 0; t < nt(); ++t) {
    for (int s = 0; s < nsrc_; ++s) {
      amplitude(t, s) = wavelet[static_cast<std::size_t>(t)];
    }
  }
}

MovingSources MovingSources::linear_tow(const sparse::Coord3& from,
                                        const sparse::Coord3& to, int n,
                                        int nt) {
  TEMPEST_REQUIRE(n > 0 && nt > 0);
  std::vector<sparse::CoordList> coords(static_cast<std::size_t>(nt));
  for (int t = 0; t < nt; ++t) {
    const double f = nt > 1 ? static_cast<double>(t) / (nt - 1) : 0.0;
    sparse::CoordList step;
    step.reserve(static_cast<std::size_t>(n));
    for (int s = 0; s < n; ++s) {
      // Sources trail each other by ~1.7 grid points along the tow line.
      const double trail = 1.7 * s;
      step.push_back(sparse::Coord3{from.x + f * (to.x - from.x) + trail,
                                    from.y + f * (to.y - from.y),
                                    from.z + f * (to.z - from.z)});
    }
    coords[static_cast<std::size_t>(t)] = std::move(step);
  }
  return MovingSources(std::move(coords), n);
}

SourceMasks build_moving_masks(const grid::Extents3& extents,
                               const MovingSources& src,
                               sparse::InterpKind kind) {
  // Union of supports: probe with unit amplitude at every timestep (the
  // paper's Listing 2 with "more timesteps").
  grid::Grid3<real_t> probe(extents, 0, real_t{0});
  for (int t = 0; t < src.nt(); ++t) {
    for (int s = 0; s < src.nsrc(); ++s) {
      for (const sparse::SupportPoint& p : sparse::support(
               src.coords(t)[static_cast<std::size_t>(s)], kind, extents)) {
        probe(p.x, p.y, p.z) += static_cast<real_t>(p.w);
      }
    }
  }

  SourceMasks masks{grid::Grid3<unsigned char>(extents, 0, 0),
                    grid::Grid3<int>(extents, 0, -1), 0};
  int next_id = 0;
  probe.for_each_interior([&](int x, int y, int z) {
    if (probe(x, y, z) != real_t{0}) {
      masks.sm(x, y, z) = 1;
      masks.sid(x, y, z) = next_id++;
    }
  });
  masks.npts = next_id;
  return masks;
}

DecomposedSource decompose_moving(const SourceMasks& masks,
                                  const MovingSources& src,
                                  sparse::InterpKind kind) {
  DecomposedSource dcmp(src.nt(), masks.npts);
  for (int t = 0; t < src.nt(); ++t) {
    for (int s = 0; s < src.nsrc(); ++s) {
      // A single NaN amplitude would silently poison every decomposed
      // weight sharing this support and, from there, the whole wavefield;
      // diagnose it at the boundary where the bad data enters.
      if (!std::isfinite(static_cast<double>(src.amplitude(t, s)))) {
        std::ostringstream os;
        os << "numerical health check failed: non-finite amplitude in "
              "moving source "
           << s << " at timestep " << t
           << " — rejecting it before the decomposition spreads it";
        throw resilience::NumericalHealthError("moving-source", t, os.str());
      }
      for (const sparse::SupportPoint& p :
           sparse::support(src.coords(t)[static_cast<std::size_t>(s)], kind,
                           masks.extents())) {
        const int id = masks.sid(p.x, p.y, p.z);
        TEMPEST_REQUIRE_MSG(id >= 0,
                            "moving support point missing from probe masks");
        dcmp.at(t, id) += static_cast<real_t>(p.w) * src.amplitude(t, s);
      }
    }
  }
  return dcmp;
}

}  // namespace tempest::core
