#pragma once

#include <span>
#include <vector>

#include "tempest/grid/grid3.hpp"

namespace tempest::core {

/// Step 5 of the paper (Listing 5, Fig. 6): the dense SM/SID volumes are
/// massively sparse, so the fused z2 loop would mostly multiply by zero.
/// We aggregate non-zeros along z into a per-(x,y)-column structure:
///   nnz(x,y)            — the paper's nnz_mask
///   entries of a column — packed (z index, id) pairs, the paper's Sp_SID
/// stored CSR so each column's work is a contiguous, cache-friendly walk.
class CompressedSparse {
 public:
  struct Entry {
    int z = 0;
    int id = 0;
  };

  CompressedSparse() = default;

  /// Build from a binary mask and an id volume (sid < 0 where mask == 0).
  CompressedSparse(const grid::Grid3<unsigned char>& mask,
                   const grid::Grid3<int>& ids);

  [[nodiscard]] int nx() const { return nx_; }
  [[nodiscard]] int ny() const { return ny_; }

  /// The paper's nnz_mask[x][y].
  [[nodiscard]] int nnz(int x, int y) const {
    return offsets_[column(x, y) + 1] - offsets_[column(x, y)];
  }

  /// Packed entries of column (x,y).
  [[nodiscard]] std::span<const Entry> entries(int x, int y) const {
    const std::size_t c = column(x, y);
    return {data_.data() + offsets_[c],
            static_cast<std::size_t>(offsets_[c + 1] - offsets_[c])};
  }

  /// Total packed entries (== npts when every affected point is unique).
  [[nodiscard]] int total_entries() const {
    return static_cast<int>(data_.size());
  }

  /// Largest per-column count; the paper reports the z iteration-space
  /// reduction from nz to this bound.
  [[nodiscard]] int max_nnz() const { return max_nnz_; }

  /// True if no column has any entry (e.g. zero sources).
  [[nodiscard]] bool empty() const { return data_.empty(); }

  /// Raw CSR views for generated-code consumers (codegen/): offsets has
  /// nx*ny + 1 ints; entries are (z, id) int pairs, interleaved.
  [[nodiscard]] const int* raw_offsets() const { return offsets_.data(); }
  [[nodiscard]] const Entry* raw_entries() const { return data_.data(); }

 private:
  [[nodiscard]] std::size_t column(int x, int y) const {
    return static_cast<std::size_t>(x) * static_cast<std::size_t>(ny_) +
           static_cast<std::size_t>(y);
  }

  int nx_ = 0;
  int ny_ = 0;
  int max_nnz_ = 0;
  std::vector<int> offsets_;  ///< nx*ny + 1 CSR offsets
  std::vector<Entry> data_;
};

}  // namespace tempest::core
