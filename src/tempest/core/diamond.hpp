#pragma once

#include <vector>

#include "tempest/core/wavefront.hpp"
#include "tempest/grid/blocks.hpp"
#include "tempest/trace/trace.hpp"
#include "tempest/util/error.hpp"

namespace tempest::core {

/// Diamond/split temporal blocking along x — the alternative
/// temporal-blocking family the paper cites (Bertolacci et al., Malas et
/// al.) and that the precomputation scheme equally legalises. Each time band
/// of height T is executed in two phases over x-periods of width W:
///
///   phase 1 ("peaks"):   contracting triangles
///       x in [c - W/2 + s*dt, c + W/2 - s*dt),  dt = t - band_start
///   phase 2 ("valleys"): expanding triangles filling the complement
///       x in [c + W/2 - s*dt, c + W/2 + s*dt)
///
/// with slope s >= the stencil radius and W >= 2 s T. Within a phase, all
/// triangles are mutually independent — the scheduling freedom that makes
/// diamond tiling attractive on many cores, in contrast to the wave-front
/// scheme's sequential tile order. y stays unskewed (full extent, cut into
/// blocks); z is the vectorized dimension as everywhere else.
struct DiamondSpec {
  int height = 8;   ///< timesteps per band (T)
  int width = 64;   ///< x period (W); must satisfy width >= 2*slope*height
  int block_x = 8;  ///< space-block edge within a triangle slice
  int block_y = 8;

  [[nodiscard]] bool valid_for(int slope) const {
    return height > 0 && block_x > 0 && block_y > 0 &&
           width >= 2 * slope * height && width > 0;
  }
};

/// Execute fn(t, Box3) under the diamond schedule. Blocks within one
/// triangle slice run under OpenMP; phases and bands are barriers.
/// `on_band(te)` fires after band [t0, te) completes — every timestep < te
/// is then fully computed (the hook the health monitor scans from).
template <typename BlockFn, typename BandFn = NoBandCallback>
void run_diamond(const grid::Extents3& e, int t_begin, int t_end, int slope,
                 const DiamondSpec& spec, BlockFn&& fn, bool parallel = true,
                 BandFn&& on_band = BandFn{}) {
  TEMPEST_REQUIRE(slope >= 0);
  TEMPEST_REQUIRE_MSG(spec.valid_for(slope),
                      "diamond width must be >= 2*slope*height");
  const int W = spec.width;

  auto emit_range = [&](int t, int xlo, int xhi) {
    const grid::Range xr = grid::intersect(grid::Range{xlo, xhi},
                                           grid::Range{0, e.nx});
    if (xr.empty()) return;
    const grid::Box3 rect{xr, {0, e.ny}, {0, e.nz}};
    const auto blocks = grid::decompose_xy(rect, spec.block_x, spec.block_y);
    TEMPEST_TRACE_COUNT(TilesExecuted, 1);
    TEMPEST_TRACE_COUNT(BlocksExecuted, blocks.size());
#pragma omp parallel for schedule(dynamic) if (parallel)
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      fn(t, blocks[b]);
    }
  };

  for (int t0 = t_begin; t0 < t_end; t0 += spec.height) {
    const int te = std::min(t0 + spec.height, t_end);
    TEMPEST_TRACE_SPAN_ARG("diamond.band", "schedule", te);
    // Phase 1: contracting "peak" triangles centred at c = k*W + W/2.
    for (int t = t0; t < te; ++t) {
      const int shrink = slope * (t - t0);
      for (int base = -W; base < e.nx + W; base += W) {
        emit_range(t, base + shrink, base + W - shrink);
      }
    }
    // Phase 2: expanding "valley" triangles centred at the period edges.
    for (int t = t0; t < te; ++t) {
      const int grow = slope * (t - t0);
      if (grow == 0) continue;  // zero-width at the band start
      for (int base = -W; base < e.nx + W; base += W) {
        emit_range(t, base + W - grow, base + W + grow);
      }
    }
    TEMPEST_TRACE_COUNT(BandsExecuted, 1);
    on_band(te);
  }
}

/// Materialized op sequence (deterministic) for validation and inspection.
[[nodiscard]] std::vector<ScheduleOp> diamond_schedule(const grid::Extents3& e,
                                                       int t_begin, int t_end,
                                                       int slope,
                                                       const DiamondSpec& spec);

}  // namespace tempest::core
