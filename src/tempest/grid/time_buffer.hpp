#pragma once

#include <vector>

#include "tempest/grid/grid3.hpp"
#include "tempest/util/error.hpp"

namespace tempest::grid {

/// Circular buffer of time slices, the storage scheme of explicit FD
/// time-stepping: a time-order-2 scheme keeps 3 slices (t-1, t, t+1) and a
/// time-order-1 scheme keeps 2, indexed modulo the slot count exactly like
/// Devito's modulo-buffered TimeFunction.
template <typename T>
class TimeBuffer {
 public:
  TimeBuffer() = default;

  TimeBuffer(int slots, Extents3 extents, int halo, T init = T{}) {
    TEMPEST_REQUIRE(slots >= 1);
    slices_.reserve(static_cast<std::size_t>(slots));
    for (int i = 0; i < slots; ++i) slices_.emplace_back(extents, halo, init);
  }

  [[nodiscard]] int slots() const { return static_cast<int>(slices_.size()); }

  /// Slice holding logical timestep `t` (t may be any non-negative step; it
  /// is folded modulo the slot count).
  [[nodiscard]] Grid3<T>& at(int t) {
    return slices_[static_cast<std::size_t>(fold(t))];
  }
  [[nodiscard]] const Grid3<T>& at(int t) const {
    return slices_[static_cast<std::size_t>(fold(t))];
  }

  [[nodiscard]] Grid3<T>& slot(int s) {
    TEMPEST_REQUIRE(s >= 0 && s < slots());
    return slices_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] const Grid3<T>& slot(int s) const {
    TEMPEST_REQUIRE(s >= 0 && s < slots());
    return slices_[static_cast<std::size_t>(s)];
  }

  void fill(T value) {
    for (auto& s : slices_) s.fill(value);
  }

 private:
  [[nodiscard]] int fold(int t) const {
    const int n = slots();
    TEMPEST_REQUIRE(t >= 0 && n > 0);
    return t % n;
  }

  std::vector<Grid3<T>> slices_;
};

}  // namespace tempest::grid
