#include "tempest/grid/grid3.hpp"

#include "tempest/grid/blocks.hpp"
#include "tempest/grid/time_buffer.hpp"

namespace tempest::grid {

// Explicit instantiations for the field types used across the library keep
// per-TU compile times down and catch template errors in one place.
template class Grid3<float>;
template class Grid3<double>;
template class Grid3<int>;
template class Grid3<unsigned char>;

template class TimeBuffer<float>;
template class TimeBuffer<double>;

template double max_abs_diff<float>(const Grid3<float>&, const Grid3<float>&);
template double max_abs_diff<double>(const Grid3<double>&,
                                     const Grid3<double>&);
template double max_abs<float>(const Grid3<float>&);
template double max_abs<double>(const Grid3<double>&);

}  // namespace tempest::grid
