#pragma once

#include <cstddef>
#include <ostream>

namespace tempest::grid {

/// Integer grid coordinate (interior coordinates; halo points use negatives
/// and values >= extent).
struct Index3 {
  int x = 0;
  int y = 0;
  int z = 0;

  friend bool operator==(const Index3&, const Index3&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const Index3& i) {
  return os << '(' << i.x << ',' << i.y << ',' << i.z << ')';
}

/// Interior grid shape (number of points per dimension, excluding halos).
struct Extents3 {
  int nx = 0;
  int ny = 0;
  int nz = 0;

  [[nodiscard]] std::size_t size() const {
    return static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) *
           static_cast<std::size_t>(nz);
  }

  [[nodiscard]] bool contains(const Index3& i) const {
    return i.x >= 0 && i.x < nx && i.y >= 0 && i.y < ny && i.z >= 0 &&
           i.z < nz;
  }

  friend bool operator==(const Extents3&, const Extents3&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const Extents3& e) {
  return os << e.nx << 'x' << e.ny << 'x' << e.nz;
}

/// Half-open integer interval [lo, hi).
struct Range {
  int lo = 0;
  int hi = 0;

  [[nodiscard]] int length() const { return hi > lo ? hi - lo : 0; }
  [[nodiscard]] bool empty() const { return hi <= lo; }
  [[nodiscard]] bool contains(int v) const { return v >= lo && v < hi; }

  friend bool operator==(const Range&, const Range&) = default;
};

[[nodiscard]] inline Range intersect(Range a, Range b) {
  return {a.lo > b.lo ? a.lo : b.lo, a.hi < b.hi ? a.hi : b.hi};
}

/// Axis-aligned half-open box, the unit of space blocking.
struct Box3 {
  Range x;
  Range y;
  Range z;

  [[nodiscard]] bool empty() const {
    return x.empty() || y.empty() || z.empty();
  }
  [[nodiscard]] std::size_t volume() const {
    if (empty()) return 0;
    return static_cast<std::size_t>(x.length()) *
           static_cast<std::size_t>(y.length()) *
           static_cast<std::size_t>(z.length());
  }

  [[nodiscard]] static Box3 whole(const Extents3& e) {
    return {{0, e.nx}, {0, e.ny}, {0, e.nz}};
  }

  friend bool operator==(const Box3&, const Box3&) = default;
};

[[nodiscard]] inline Box3 intersect(const Box3& a, const Box3& b) {
  return {intersect(a.x, b.x), intersect(a.y, b.y), intersect(a.z, b.z)};
}

}  // namespace tempest::grid
