#pragma once

#include <vector>

#include "tempest/grid/extents.hpp"
#include "tempest/util/error.hpp"

namespace tempest::grid {

/// Decompose `domain` into rectangular blocks of at most (bx, by) in x and y
/// (z stays whole: it is the contiguous, vectorized dimension and blocking it
/// only hurts). This is classic spatial cache blocking (paper Fig. 4a).
[[nodiscard]] inline std::vector<Box3> decompose_xy(const Box3& domain, int bx,
                                                    int by) {
  TEMPEST_REQUIRE(bx > 0 && by > 0);
  std::vector<Box3> blocks;
  for (int x0 = domain.x.lo; x0 < domain.x.hi; x0 += bx) {
    const int x1 = std::min(x0 + bx, domain.x.hi);
    for (int y0 = domain.y.lo; y0 < domain.y.hi; y0 += by) {
      const int y1 = std::min(y0 + by, domain.y.hi);
      blocks.push_back(Box3{{x0, x1}, {y0, y1}, domain.z});
    }
  }
  return blocks;
}

/// Apply fn(Box3) to every block of an x/y decomposition without
/// materializing the block list.
template <typename Fn>
void for_each_block_xy(const Box3& domain, int bx, int by, Fn&& fn) {
  TEMPEST_REQUIRE(bx > 0 && by > 0);
  for (int x0 = domain.x.lo; x0 < domain.x.hi; x0 += bx) {
    const int x1 = std::min(x0 + bx, domain.x.hi);
    for (int y0 = domain.y.lo; y0 < domain.y.hi; y0 += by) {
      const int y1 = std::min(y0 + by, domain.y.hi);
      fn(Box3{{x0, x1}, {y0, y1}, domain.z});
    }
  }
}

}  // namespace tempest::grid
