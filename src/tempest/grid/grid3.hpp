#pragma once

#include <algorithm>
#include <cstddef>

#include "tempest/grid/extents.hpp"
#include "tempest/util/align.hpp"
#include "tempest/util/error.hpp"

namespace tempest::grid {

/// Dense 3-D field with a uniform halo on every side.
///
/// Storage is z-contiguous (x slowest, z fastest) and 64-byte aligned so the
/// innermost stencil loop vectorizes. Interior coordinates run over
/// [0, nx) x [0, ny) x [0, nz); halo points are addressed with coordinates in
/// [-halo, extent + halo). Halo points are plain storage — the wave
/// propagators use them as zero-padded Dirichlet boundaries, refreshed by
/// fill_halo().
template <typename T>
class Grid3 {
 public:
  Grid3() = default;

  Grid3(Extents3 extents, int halo, T init = T{})
      : extents_(extents),
        halo_(halo),
        stride_z_(1),
        stride_y_(static_cast<std::ptrdiff_t>(extents.nz + 2 * halo)),
        stride_x_(stride_y_ *
                  static_cast<std::ptrdiff_t>(extents.ny + 2 * halo)),
        data_(static_cast<std::size_t>(extents.nx + 2 * halo) *
                  static_cast<std::size_t>(extents.ny + 2 * halo) *
                  static_cast<std::size_t>(extents.nz + 2 * halo),
              init) {
    TEMPEST_REQUIRE(extents.nx > 0 && extents.ny > 0 && extents.nz > 0);
    TEMPEST_REQUIRE(halo >= 0);
  }

  [[nodiscard]] const Extents3& extents() const { return extents_; }
  [[nodiscard]] int halo() const { return halo_; }
  [[nodiscard]] std::size_t padded_size() const { return data_.size(); }

  /// Linear offset of interior point (x,y,z) into data(); valid for halo
  /// coordinates too.
  [[nodiscard]] std::ptrdiff_t offset(int x, int y, int z) const {
    return (x + halo_) * stride_x_ + (y + halo_) * stride_y_ + (z + halo_);
  }

  [[nodiscard]] T& operator()(int x, int y, int z) {
    return data_[static_cast<std::size_t>(offset(x, y, z))];
  }
  [[nodiscard]] const T& operator()(int x, int y, int z) const {
    return data_[static_cast<std::size_t>(offset(x, y, z))];
  }

  /// Bounds-checked access (checks the *padded* domain, halo included).
  [[nodiscard]] T& at(int x, int y, int z) {
    check(x, y, z);
    return (*this)(x, y, z);
  }
  [[nodiscard]] const T& at(int x, int y, int z) const {
    check(x, y, z);
    return (*this)(x, y, z);
  }

  /// Raw pointer to the interior origin (0,0,0); hot kernels walk this with
  /// stride_x()/stride_y().
  [[nodiscard]] T* origin() {
    return data_.data() + offset(0, 0, 0);
  }
  [[nodiscard]] const T* origin() const {
    return data_.data() + offset(0, 0, 0);
  }

  [[nodiscard]] T* raw() { return data_.data(); }
  [[nodiscard]] const T* raw() const { return data_.data(); }

  [[nodiscard]] std::ptrdiff_t stride_x() const { return stride_x_; }
  [[nodiscard]] std::ptrdiff_t stride_y() const { return stride_y_; }
  [[nodiscard]] std::ptrdiff_t stride_z() const { return stride_z_; }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  /// Reset all halo points to `value` (used to re-impose the zero Dirichlet
  /// padding after a grid is loaded with external data).
  void fill_halo(T value) {
    const int h = halo_;
    for (int x = -h; x < extents_.nx + h; ++x) {
      for (int y = -h; y < extents_.ny + h; ++y) {
        const bool xy_halo =
            x < 0 || x >= extents_.nx || y < 0 || y >= extents_.ny;
        for (int z = -h; z < extents_.nz + h; ++z) {
          if (xy_halo || z < 0 || z >= extents_.nz) (*this)(x, y, z) = value;
        }
      }
    }
  }

  /// Interior iteration helper: fn(x, y, z) over the whole interior.
  template <typename Fn>
  void for_each_interior(Fn&& fn) const {
    for (int x = 0; x < extents_.nx; ++x)
      for (int y = 0; y < extents_.ny; ++y)
        for (int z = 0; z < extents_.nz; ++z) fn(x, y, z);
  }

 private:
  void check(int x, int y, int z) const {
    TEMPEST_REQUIRE_MSG(x >= -halo_ && x < extents_.nx + halo_ &&
                            y >= -halo_ && y < extents_.ny + halo_ &&
                            z >= -halo_ && z < extents_.nz + halo_,
                        "grid access out of padded bounds");
  }

  Extents3 extents_{};
  int halo_ = 0;
  std::ptrdiff_t stride_z_ = 0;
  std::ptrdiff_t stride_y_ = 0;
  std::ptrdiff_t stride_x_ = 0;
  util::aligned_vector<T> data_;
};

/// Max absolute difference over the interiors of two same-shaped grids.
template <typename T>
double max_abs_diff(const Grid3<T>& a, const Grid3<T>& b) {
  TEMPEST_REQUIRE(a.extents() == b.extents());
  double m = 0.0;
  a.for_each_interior([&](int x, int y, int z) {
    const double d = std::abs(static_cast<double>(a(x, y, z)) -
                              static_cast<double>(b(x, y, z)));
    if (d > m) m = d;
  });
  return m;
}

/// Max absolute interior value (stability checks: finite & bounded fields).
template <typename T>
double max_abs(const Grid3<T>& g) {
  double m = 0.0;
  g.for_each_interior([&](int x, int y, int z) {
    const double d = std::abs(static_cast<double>(g(x, y, z)));
    if (d > m) m = d;
  });
  return m;
}

}  // namespace tempest::grid
