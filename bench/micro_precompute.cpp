// Micro-benchmark µ2: cost of the sparse-operator precompute pipeline
// (probe -> masks -> decompose -> compress) versus source count and grid
// size. Quantifies the paper's claim that the scheme "adds a negligible
// overhead compared to the measured gains": compare these one-off
// millisecond costs against fig9's per-run propagation seconds.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "micro_common.hpp"
#include "tempest/core/compress.hpp"
#include "tempest/core/precompute.hpp"
#include "tempest/sparse/survey.hpp"
#include "tempest/sparse/wavelet.hpp"

namespace {

using namespace tempest;

// TEMPEST_MICRO_SIZE caps the swept grid edges (CI smoke runs); unset, the
// Args below run as written.
int capped(benchmark::State& state, int idx = 0) {
  return std::min(static_cast<int>(state.range(idx)),
                  bench::micro_size(1 << 20));
}

void BM_FullPipeline(benchmark::State& state) {
  const int size = capped(state);
  const int n_src = static_cast<int>(state.range(1));
  const grid::Extents3 e{size, size, size};
  const int nt = bench::micro_steps(228);  // the paper's acoustic step count
  sparse::SparseTimeSeries src(sparse::dense_volume(e, n_src, 7), nt);
  src.broadcast_signature(sparse::ricker(nt, 1.0, 0.010));

  for (auto _ : state) {
    const auto masks =
        core::build_source_masks(e, src, sparse::InterpKind::Trilinear);
    const auto dcmp =
        core::decompose_sources(masks, src, sparse::InterpKind::Trilinear);
    const core::CompressedSparse cs(masks.sm, masks.sid);
    benchmark::DoNotOptimize(cs.total_entries());
    benchmark::DoNotOptimize(dcmp.npts());
  }
  state.counters["npts"] = static_cast<double>(
      core::build_source_masks(e, src, sparse::InterpKind::Trilinear).npts);
}

void BM_ReceiverPipeline(benchmark::State& state) {
  const int size = capped(state);
  const int n_rec = static_cast<int>(state.range(1));
  const grid::Extents3 e{size, size, size};
  sparse::SparseTimeSeries rec(sparse::receiver_line(e, n_rec),
                               bench::micro_steps(228));
  for (auto _ : state) {
    const auto dr =
        core::decompose_receivers(e, rec, sparse::InterpKind::Trilinear);
    const core::CompressedSparse cs(dr.rm, dr.rid);
    benchmark::DoNotOptimize(cs.total_entries());
  }
}

}  // namespace

BENCHMARK(BM_FullPipeline)
    ->Args({96, 1})
    ->Args({96, 64})
    ->Args({96, 1024})
    ->Args({160, 1})
    ->Args({160, 1024})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ReceiverPipeline)
    ->Args({96, 128})
    ->Args({160, 128})
    ->Args({160, 1024})
    ->Unit(benchmark::kMillisecond);

TEMPEST_MICRO_MAIN("micro_precompute")
