// Figure 10 reproduction: WTB speed-up for the isotropic acoustic operator
// (space order 4) as the number of off-the-grid sources grows, in the two
// corner-case geometries of Section IV.E:
//   (a) sources scattered sparsely over one x-y plane slice,
//   (b) sources densely and uniformly distributed over the whole volume.
//
// Paper shape to reproduce: gains are essentially flat with source count for
// the sparse-plane case, and erode — but do not vanish — for the dense case
// (paper: ~1.4x dense vs ~1.55x sparse at the largest counts).
//
// Usage: fig10_sources [--size=160] [--steps=N] [--counts=1,4,16,64,256,1024]
//                      [--reps=2] [--tiles=8,64,64] [--csv] [--full]
//                      [--json[=BENCH_fig10_sources.json]]

#include "common.hpp"
#include "tempest/core/precompute.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  const util::Cli cli(argc, argv);
  const BaseConfig cfg = BaseConfig::parse(cli, /*default_size=*/256);
  Session session("fig10_sources", cli);
  const trace::Session trace_session(cfg.trace_path, cfg.metrics_path);
  const int so = 4;
  const int nt = steps_for_kernel("acoustic", cfg.full,
                                  cli.get_int("steps", 0));
  const auto counts = cli.get_int_list("counts", {1, 4, 16, 64, 256, 1024});
  const auto t = cli.get_int_list("tiles", {8, 64, 64});
  core::TileSpec tiles{static_cast<int>(t[0]),
                       static_cast<int>(t.size() > 1 ? t[1] : 64),
                       static_cast<int>(t.size() > 2 ? t[2] : 64), 8, 8};

  session.add_config("size", cfg.size);
  session.add_config("steps", nt);
  session.add_config("reps", cfg.reps);
  session.add_config("full", cfg.full);

  physics::Geometry geom{cfg.extents(), 10.0, so, cfg.nbl};
  const auto model = physics::make_acoustic_layered(geom);

  physics::PropagatorOptions opts;
  opts.tiles = tiles;
  physics::AcousticPropagator prop(model, opts);
  const double dt = prop.dt();
  const auto wavelet = sparse::ricker(nt, dt, 0.010);

  util::Table table({"geometry", "n_sources", "npts", "baseline_gpts",
                     "wtb_gpts", "speedup", "precompute_s"});

  for (const char* geometry : {"sparse-plane", "dense-volume"}) {
    for (long n : counts) {
      sparse::CoordList coords =
          std::string(geometry) == "sparse-plane"
              ? sparse::plane_scatter(geom.extents, static_cast<int>(n),
                                      /*seed=*/1234, 0.1, cfg.nbl)
              : sparse::dense_volume(geom.extents, static_cast<int>(n),
                                     /*seed=*/1234, cfg.nbl);
      sparse::SparseTimeSeries src(std::move(coords), nt);
      src.broadcast_signature(wavelet);
      sparse::SparseTimeSeries rec = make_receivers(geom.extents, nt);

      const auto masks = core::build_source_masks(
          geom.extents, src, sparse::InterpKind::Trilinear);

      const std::string n_s = std::to_string(n);
      const CaseResult& base_c = measure(
          session, std::string(geometry) + "_n" + n_s + "_base",
          {{"geometry", geometry}, {"n_sources", n_s},
           {"schedule", "space_blocked"}},
          prop, physics::Schedule::SpaceBlocked, src, &rec, cfg.reps);
      const CaseResult& wave_c = measure(
          session, std::string(geometry) + "_n" + n_s + "_wtb",
          {{"geometry", geometry}, {"n_sources", n_s},
           {"schedule", "wavefront"}},
          prop, physics::Schedule::Wavefront, src, &rec, cfg.reps);
      const physics::RunStats base = best_stats(base_c);
      const physics::RunStats wave = best_stats(wave_c);
      std::cerr << "  " << geometry << " n=" << n << " npts=" << masks.npts
                << ": " << base.gpoints_per_s() << " -> "
                << wave.gpoints_per_s() << " GPts/s (wtb min "
                << wave_c.min_s() << "s, median " << wave_c.median_s()
                << "s)\n";

      table.add_row({geometry, std::to_string(n), std::to_string(masks.npts),
                     util::Table::num(base.gpoints_per_s(), 4),
                     util::Table::num(wave.gpoints_per_s(), 4),
                     util::Table::num(
                         wave.gpoints_per_s() / base.gpoints_per_s(), 3),
                     util::Table::num(wave.precompute_seconds, 3)});
    }
  }

  std::cout << "# Figure 10: acoustic SO4 speed-up over source count ("
            << cfg.size << "^3 grid)\n";
  emit(table, cfg.csv);
  return 0;
}
