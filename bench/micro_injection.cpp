// Micro-benchmark µ3: the three source-injection strategies in isolation —
// naive off-the-grid scatter (recomputing interpolation weights), cached
// scatter (the baseline propagators' path), and the fused/compressed apply
// (the WTB path, swept over all columns as the wave-front would). Shows the
// per-timestep sparse-operator cost is tiny next to the grid sweep and that
// the compressed structure keeps it bounded even for dense source sets.

#include <benchmark/benchmark.h>

#include "micro_common.hpp"
#include "tempest/core/compress.hpp"
#include "tempest/core/fused.hpp"
#include "tempest/core/precompute.hpp"
#include "tempest/sparse/operators.hpp"
#include "tempest/sparse/survey.hpp"
#include "tempest/sparse/wavelet.hpp"

namespace {

using namespace tempest;

const int kSize = bench::micro_size(128);
const grid::Extents3 kE{kSize, kSize, kSize};
const int kNt = bench::micro_steps(8);

sparse::SparseTimeSeries make_sources(int n) {
  sparse::SparseTimeSeries src(sparse::dense_volume(kE, n, 11), kNt);
  src.broadcast_signature(sparse::ricker(kNt, 1.0, 0.010));
  return src;
}

void BM_InjectNaive(benchmark::State& state) {
  const auto src = make_sources(static_cast<int>(state.range(0)));
  grid::Grid3<real_t> u(kE, 2, 0.0f);
  for (auto _ : state) {
    for (int t = 0; t < kNt; ++t) {
      sparse::inject(u, src, t, sparse::InterpKind::Trilinear,
                     [](int, int, int) { return 1.0; });
    }
    benchmark::DoNotOptimize(u.raw());
  }
}

void BM_InjectCached(benchmark::State& state) {
  const auto src = make_sources(static_cast<int>(state.range(0)));
  const sparse::SupportCache cache(src, sparse::InterpKind::Trilinear, kE);
  grid::Grid3<real_t> u(kE, 2, 0.0f);
  for (auto _ : state) {
    for (int t = 0; t < kNt; ++t) {
      sparse::inject_cached(u, src, t, cache,
                            [](int, int, int) { return 1.0; });
    }
    benchmark::DoNotOptimize(u.raw());
  }
}

void BM_InjectFusedDense(benchmark::State& state) {
  // The Listing 4 ablation: fused but uncompressed — the z2 loop scans the
  // whole massively-sparse mask volume. This is what the compression step
  // (Listing 5 / Fig. 6) eliminates.
  const auto src = make_sources(static_cast<int>(state.range(0)));
  const auto masks =
      core::build_source_masks(kE, src, sparse::InterpKind::Trilinear);
  const auto dcmp =
      core::decompose_sources(masks, src, sparse::InterpKind::Trilinear);
  grid::Grid3<real_t> u(kE, 2, 0.0f);
  for (auto _ : state) {
    for (int t = 0; t < kNt; ++t) {
      core::fused_inject_dense(u, masks, dcmp, t, {0, kE.nx}, {0, kE.ny},
                               [](int, int, int) { return 1.0; });
    }
    benchmark::DoNotOptimize(u.raw());
  }
}

void BM_InjectFusedCompressed(benchmark::State& state) {
  const auto src = make_sources(static_cast<int>(state.range(0)));
  const auto masks =
      core::build_source_masks(kE, src, sparse::InterpKind::Trilinear);
  const auto dcmp =
      core::decompose_sources(masks, src, sparse::InterpKind::Trilinear);
  const core::CompressedSparse cs(masks.sm, masks.sid);
  grid::Grid3<real_t> u(kE, 2, 0.0f);
  for (auto _ : state) {
    for (int t = 0; t < kNt; ++t) {
      core::fused_inject(u, cs, dcmp, t, {0, kE.nx}, {0, kE.ny},
                         [](int, int, int) { return 1.0; });
    }
    benchmark::DoNotOptimize(u.raw());
  }
  state.counters["npts"] = masks.npts;
}

}  // namespace

BENCHMARK(BM_InjectNaive)->Arg(1)->Arg(64)->Arg(1024)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_InjectCached)->Arg(1)->Arg(64)->Arg(1024)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_InjectFusedDense)->Arg(1)->Arg(64)->Arg(1024)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_InjectFusedCompressed)->Arg(1)->Arg(64)->Arg(1024)->Unit(benchmark::kMicrosecond);

TEMPEST_MICRO_MAIN("micro_injection")
