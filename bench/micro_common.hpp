#pragma once

// Shared main() for the google-benchmark micro suites (micro_stencil,
// micro_precompute, micro_injection, micro_wavefront). Adds three things
// on top of BENCHMARK_MAIN():
//
//   * a bench::Session, so `--json[=FILE]` emits BENCH_<name>.json with
//     every run's per-iteration time and user counters next to the normal
//     console table (the tempest flag is stripped before google-benchmark
//     sees argv — it would otherwise abort on an unknown flag);
//   * TEMPEST_MICRO_SIZE / TEMPEST_MICRO_STEPS env overrides, so CI can
//     run the suites at smoke-test sizes without a recompile;
//   * a process-scope PMU window around the whole suite (rides in the
//     session's pmu.process_delta).
//
// Usage in a suite:
//   BENCHMARK(...);
//   TEMPEST_MICRO_MAIN("micro_stencil")

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "session.hpp"

namespace bench {

inline int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const long n = std::strtol(v, nullptr, 10);
  return n > 0 ? static_cast<int>(n) : fallback;
}

/// Grid extent for a micro suite, overridable via TEMPEST_MICRO_SIZE.
inline int micro_size(int fallback) {
  return env_int("TEMPEST_MICRO_SIZE", fallback);
}

/// Timestep count for a micro suite, overridable via TEMPEST_MICRO_STEPS.
inline int micro_steps(int fallback) {
  return env_int("TEMPEST_MICRO_STEPS", fallback);
}

namespace detail {

/// Console reporter that also records every run into the Session.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit CaptureReporter(Session* session) : session_(session) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      BenchmarkRun r;
      r.name = run.benchmark_name();
      r.iterations = static_cast<long long>(run.iterations);
      r.real_s = run.iterations > 0
                     ? run.real_accumulated_time /
                           static_cast<double>(run.iterations)
                     : 0.0;
      for (const auto& [name, counter] : run.counters) {
        r.counters[name] = counter.value;
      }
      session_->add_benchmark_run(std::move(r));
    }
    ConsoleReporter::ReportRuns(reports);
  }

 private:
  Session* session_;
};

}  // namespace detail

/// Replacement for BENCHMARK_MAIN()'s body; see file comment.
inline int micro_main(int argc, char** argv, const std::string& name) {
  // Partition argv: tempest-owned flags stay out of google-benchmark's
  // parser (it rejects flags it does not know).
  std::vector<char*> bm_argv;
  std::vector<const char*> own_argv;
  bm_argv.push_back(argv[0]);
  own_argv.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json", 0) == 0) {
      own_argv.push_back(argv[i]);
    } else {
      bm_argv.push_back(argv[i]);
    }
  }
  const tempest::util::Cli cli(static_cast<int>(own_argv.size()),
                               own_argv.data());

  Session session(name, cli);
  session.add_config("micro_size_env", env_int("TEMPEST_MICRO_SIZE", 0));
  session.add_config("micro_steps_env", env_int("TEMPEST_MICRO_STEPS", 0));

  int bm_argc = static_cast<int>(bm_argv.size());
  benchmark::Initialize(&bm_argc, bm_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bm_argc, bm_argv.data())) {
    return 1;
  }
  detail::CaptureReporter reporter(&session);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}

}  // namespace bench

#define TEMPEST_MICRO_MAIN(name)                   \
  int main(int argc, char** argv) {                \
    return bench::micro_main(argc, argv, (name));  \
  }
