// Figure 9 reproduction: throughput speed-up of wave-front temporal blocking
// over the spatially-blocked vectorized baseline, for isotropic acoustic,
// isotropic elastic and TTI at space orders 4, 8, 12.
//
// The paper reports two Azure VM architectures (Broadwell / Skylake); this
// harness measures one column on the host machine (substitution documented
// in DESIGN.md). The reproduced *shape*: clear gains at SO 4 (paper: up to
// ~1.6x acoustic), moderate at SO 8 (~1.13x+), near-parity at SO 12.
//
// Usage: fig9_speedup [--size=160] [--steps=N] [--so=4,8,12] [--reps=2]
//                     [--kernels=acoustic,elastic,tti] [--tiles=tt,tx,ty]
//                     [--threads=N] [--csv] [--full]
//                     [--json[=BENCH_fig9_speedup.json]]
//
// --threads=N runs both schedules task-parallel on N workers (0 = resolve
// from $TEMPEST_THREADS / the OpenMP default). The resolved count, the
// engaged task backend and each case's tile shape ride in the JSON so
// multi-threaded numbers are never mistaken for serial ones —
// scripts/bench_check.py cross-checks those fields against the env
// fingerprint.

#include <sstream>

#include "common.hpp"
#include "tempest/util/threads.hpp"

namespace {

using namespace bench;

struct Row {
  std::string kernel;
  int so;
  double base_gpts;
  double wave_gpts;
  double precompute_s;
};

core::TileSpec tiles_for(const util::Cli& cli, const std::string& kernel,
                         int so) {
  if (!cli.has("tiles")) return default_tiles(kernel, so);
  const auto t = cli.get_int_list("tiles", {8, 64, 64});
  core::TileSpec spec;
  spec.tile_t = static_cast<int>(t.size() > 0 ? t[0] : 8);
  spec.tile_x = static_cast<int>(t.size() > 1 ? t[1] : 64);
  spec.tile_y = static_cast<int>(t.size() > 2 ? t[2] : spec.tile_x);
  spec.block_x = 8;
  spec.block_y = 8;
  return spec;
}

std::string tile_shape_str(const core::TileSpec& t) {
  return std::to_string(t.tile_t) + "x" + std::to_string(t.tile_x) + "x" +
         std::to_string(t.tile_y);
}

template <typename Model, typename Propagator>
Row run_kernel(Session& session, const std::string& name, const Model& model,
               int so, int nt, const core::TileSpec& tiles, int threads,
               int reps) {
  physics::PropagatorOptions opts;
  opts.tiles = tiles;
  opts.threads = threads;
  Propagator prop(model, opts);

  sparse::SparseTimeSeries src =
      make_source(model.geom.extents, nt, prop.dt());
  sparse::SparseTimeSeries rec = make_receivers(model.geom.extents, nt);

  const std::string so_s = std::to_string(so);
  const std::string threads_s = std::to_string(threads);
  const std::string shape = tile_shape_str(tiles);
  const CaseResult& base =
      measure(session, name + "_so" + so_s + "_base",
              {{"kernel", name},
               {"so", so_s},
               {"schedule", "space_blocked"},
               {"threads", threads_s},
               {"tile_shape", shape}},
              prop, physics::Schedule::SpaceBlocked, src, &rec, reps);
  const CaseResult& wave =
      measure(session, name + "_so" + so_s + "_wtb",
              {{"kernel", name},
               {"so", so_s},
               {"schedule", "wavefront"},
               {"threads", threads_s},
               {"tile_shape", shape}},
              prop, physics::Schedule::Wavefront, src, &rec, reps);
  const physics::RunStats base_s = best_stats(base);
  const physics::RunStats wave_s = best_stats(wave);
  std::cerr << "  " << name << " O(" << (name == "elastic" ? 1 : 2) << ','
            << so << "): base " << base_s.gpoints_per_s()
            << " GPts/s (min " << base.min_s() << "s, median "
            << base.median_s() << "s), wtb " << wave_s.gpoints_per_s()
            << " GPts/s (min " << wave.min_s() << "s, median "
            << wave.median_s() << "s)\n";
  return Row{name, so, base_s.gpoints_per_s(), wave_s.gpoints_per_s(),
             wave_s.precompute_seconds};
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const BaseConfig cfg = BaseConfig::parse(cli, /*default_size=*/256);
  Session session("fig9_speedup", cli);
  const trace::Session trace_session(cfg.trace_path, cfg.metrics_path);
  const auto so_list = cli.get_int_list("so", {4, 8, 12});
  std::stringstream kernels_ss(
      cli.get("kernels", "acoustic,elastic,tti"));
  // Resolved once: 1 is the deterministic serial engine; anything above
  // engages the task backend reported alongside (bench_check.py rejects a
  // multi-thread document whose backend claims otherwise).
  const int threads = util::resolve_threads(cli.get_int("threads", 0));
  session.add_config("size", cfg.size);
  session.add_config("reps", cfg.reps);
  session.add_config("full", cfg.full);
  session.add_config("kernels", cli.get("kernels", "acoustic,elastic,tti"));
  session.add_config("threads", threads);
  session.add_config("task_backend",
                     std::string(util::to_string(util::select_backend(threads))));

  util::Table table({"kernel", "space_order", "baseline_gpts", "wtb_gpts",
                     "speedup", "precompute_s"});

  std::string kernel;
  while (std::getline(kernels_ss, kernel, ',')) {
    for (long so : so_list) {
      const int nt = steps_for_kernel(kernel, cfg.full,
                                      cli.get_int("steps", 0));
      physics::Geometry geom{cfg.extents(), kernel == "tti" ? 20.0 : 10.0,
                             static_cast<int>(so), cfg.nbl};
      Row row{};
      const core::TileSpec tiles =
          tiles_for(cli, kernel, static_cast<int>(so));
      if (kernel == "acoustic") {
        const auto model = physics::make_acoustic_layered(geom);
        row = run_kernel<physics::AcousticModel, physics::AcousticPropagator>(
            session, kernel, model, static_cast<int>(so), nt, tiles, threads,
            cfg.reps);
      } else if (kernel == "elastic") {
        const auto model = physics::make_elastic_layered(geom);
        row = run_kernel<physics::ElasticModel, physics::ElasticPropagator>(
            session, kernel, model, static_cast<int>(so), nt, tiles, threads,
            cfg.reps);
      } else if (kernel == "tti") {
        const auto model = physics::make_tti_layered(geom);
        row = run_kernel<physics::TTIModel, physics::TTIPropagator>(
            session, kernel, model, static_cast<int>(so), nt, tiles, threads,
            cfg.reps);
      } else {
        std::cerr << "unknown kernel: " << kernel << "\n";
        return 1;
      }
      table.add_row({row.kernel, std::to_string(row.so),
                     util::Table::num(row.base_gpts, 4),
                     util::Table::num(row.wave_gpts, 4),
                     util::Table::num(row.wave_gpts / row.base_gpts, 3),
                     util::Table::num(row.precompute_s, 3)});
    }
  }

  std::cout << "# Figure 9: WTB speed-up vs spatially-blocked baseline ("
            << cfg.size << "^3 grid)\n";
  emit(table, cfg.csv);
  return 0;
}
