// Micro-benchmark µ1: raw stencil-kernel throughput per space order for the
// three wave propagators (single-schedule sweeps, no sparse operators).
// Supporting data for Fig. 9/11: shows the baseline cost ordering
// (TTI >> elastic > acoustic) and the cost growth with space order.

#include <benchmark/benchmark.h>

#include "micro_common.hpp"
#include "tempest/physics/acoustic.hpp"
#include "tempest/physics/elastic.hpp"
#include "tempest/physics/tti.hpp"
#include "tempest/sparse/survey.hpp"
#include "tempest/sparse/wavelet.hpp"

namespace {

using namespace tempest;

const int kSize = bench::micro_size(96);
const int kSteps = bench::micro_steps(4);

template <typename Model, typename Propagator>
void run_case(benchmark::State& state, Model (*make)(const physics::Geometry&,
                                                     double, double, int),
              double spacing) {
  const int so = static_cast<int>(state.range(0));
  physics::Geometry geom{{kSize, kSize, kSize}, spacing, so, 8};
  const Model model = make(geom, 1.5, 3.5, 5);
  physics::PropagatorOptions opts;
  Propagator prop(model, opts);
  sparse::SparseTimeSeries src(sparse::single_center_source(geom.extents),
                               kSteps);
  src.broadcast_signature(sparse::ricker(kSteps, prop.dt(), 0.010));

  long long updates = 0;
  for (auto _ : state) {
    const physics::RunStats s =
        prop.run(physics::Schedule::SpaceBlocked, src, nullptr);
    updates += s.point_updates;
    benchmark::DoNotOptimize(updates);
  }
  state.counters["GPts/s"] = benchmark::Counter(
      static_cast<double>(updates) / 1e9, benchmark::Counter::kIsRate);
}

void BM_AcousticSweep(benchmark::State& state) {
  run_case<physics::AcousticModel, physics::AcousticPropagator>(
      state, physics::make_acoustic_layered, 10.0);
}

void BM_ElasticSweep(benchmark::State& state) {
  run_case<physics::ElasticModel, physics::ElasticPropagator>(
      state, physics::make_elastic_layered, 10.0);
}

void BM_TTISweep(benchmark::State& state) {
  run_case<physics::TTIModel, physics::TTIPropagator>(
      state, physics::make_tti_layered, 20.0);
}

}  // namespace

BENCHMARK(BM_AcousticSweep)->Arg(4)->Arg(8)->Arg(12)->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK(BM_ElasticSweep)->Arg(4)->Arg(8)->Arg(12)->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK(BM_TTISweep)->Arg(4)->Arg(8)->Arg(12)->Unit(benchmark::kMillisecond)->Iterations(2);

TEMPEST_MICRO_MAIN("micro_stencil")
