#pragma once

// Shared setup for the experiment harnesses (bench/table1_*, fig9_*, ...).
//
// Every harness accepts the same base flags:
//   --size=N     cubic grid extent (default per experiment; --full selects
//                the paper's 512)
//   --steps=N    timestep count (default: scaled-down; --full selects the
//                paper's CFL-derived counts: 228/436/587)
//   --reps=N     timing repetitions (default 1..3); every rep is actually
//                run and recorded — tables report the min, stderr notes the
//                median, and --json captures the full rep list
//   --csv        emit CSV instead of the ASCII table
//   --full       paper-scale run (512^3 grids, full time ranges)
//   --trace=F    write a Chrome trace_event JSON of the run to F
//   --metrics=F  dump tempest::trace counters to F (CSV or JSON by ext.)
//   --json[=F]   machine-readable BENCH_<name>.json (see session.hpp):
//                config, env fingerprint, per-rep times, trace counters,
//                PMU samples, derived rates, validation verdicts
//   --recalibrate  (fig11) ignore the cached machine ceilings in
//                .tempest_ceilings.json and re-run calibration
//
// The harnesses print the *rows of the paper's table or the series of the
// paper's figure*; EXPERIMENTS.md records how the shapes compare.

#include <algorithm>
#include <iostream>
#include <string>

#include "tempest/config.hpp"
#include "tempest/core/wavefront.hpp"
#include "tempest/physics/acoustic.hpp"
#include "tempest/physics/elastic.hpp"
#include "tempest/physics/model.hpp"
#include "tempest/physics/tti.hpp"
#include "tempest/physics/vti.hpp"
#include "tempest/sparse/survey.hpp"
#include "tempest/sparse/wavelet.hpp"
#include "tempest/trace/trace.hpp"
#include "tempest/util/cli.hpp"
#include "tempest/util/table.hpp"

#include "session.hpp"

namespace bench {

using namespace tempest;

// NOTE on default sizes: wave-front temporal blocking only pays off once
// the live working set exceeds the last-level cache. The defaults below
// assume an LLC of up to a few hundred MB (large cloud VMs); shrink --size
// only for smoke tests, not for performance claims.
struct BaseConfig {
  int size = 256;
  int reps = 1;
  bool csv = false;
  bool full = false;
  int nbl = 10;
  std::string trace_path;
  std::string metrics_path;

  static BaseConfig parse(const util::Cli& cli, int default_size) {
    BaseConfig c;
    c.full = cli.get_flag("full");
    c.size = static_cast<int>(
        cli.get_int("size", c.full ? 512 : default_size));
    c.reps = static_cast<int>(cli.get_int("reps", 1));
    c.csv = cli.get_flag("csv");
    c.trace_path = cli.get("trace", "");
    c.metrics_path = cli.get("metrics", "");
    return c;
  }

  [[nodiscard]] grid::Extents3 extents() const { return {size, size, size}; }
};

/// Paper Section IV.B timestep counts at 512 ms propagation, scaled down in
/// proportion when the quick default shortens the run.
inline int steps_for_kernel(const std::string& kernel, bool full,
                            long requested) {
  if (requested > 0) return static_cast<int>(requested);
  if (kernel == "acoustic") return full ? 228 : 24;
  if (kernel == "elastic") return full ? 436 : 16;
  return full ? 587 : 12;  // tti / vti
}

/// Tuned tile/block defaults per (kernel, space order) — this machine's
/// analogue of the paper's Table I: narrow tiles where temporal reuse is
/// rich (low-order, low-byte kernels), wider tiles as halos grow. Run
/// table1_autotune to re-derive these for a new machine; fig9 accepts
/// --tiles to override.
inline core::TileSpec default_tiles(const std::string& kernel, int so) {
  if (so <= 4 && (kernel == "acoustic" || kernel == "elastic")) {
    return core::TileSpec{8, 32, 32, 8, 8};
  }
  if (kernel == "acoustic" && so == 8) {
    return core::TileSpec{16, 64, 64, 8, 8};
  }
  return core::TileSpec{8, 64, 64, 8, 8};
}

/// Single Ricker-driven source at the paper's standard position.
inline sparse::SparseTimeSeries make_source(const grid::Extents3& e, int nt,
                                            double dt, double f0 = 0.010) {
  sparse::SparseTimeSeries src(sparse::single_center_source(e), nt);
  src.broadcast_signature(sparse::ricker(nt, dt, f0));
  return src;
}

/// The standard receiver line used across experiments.
inline sparse::SparseTimeSeries make_receivers(const grid::Extents3& e,
                                               int nt, int n = 128) {
  return sparse::SparseTimeSeries(sparse::receiver_line(e, n), nt);
}

/// Measure one (propagator, schedule) case: run *every* repetition (the
/// legacy best_of() short-circuited bookkeeping and lost the rep list),
/// record each rep's wall time plus trace-counter and PMU deltas into the
/// session's case list, and return the recorded CaseResult. Headline
/// number is min_s(); median_s() and the full rep vector ride in --json.
template <typename Propagator>
CaseResult& measure(Session& session, std::string name,
                    std::map<std::string, std::string> tags,
                    Propagator& prop, physics::Schedule sched,
                    const sparse::SparseTimeSeries& src,
                    sparse::SparseTimeSeries* rec, int reps) {
  CaseResult c = measure_case(session, std::move(name), std::move(tags),
                              reps, [&] { return prop.run(sched, src, rec); });
  return session.add_case(std::move(c));
}

inline void emit(const util::Table& table, bool csv) {
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print_ascii(std::cout);
  }
}

}  // namespace bench
