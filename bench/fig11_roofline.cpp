// Figure 11 reproduction: cache-aware roofline for the isotropic acoustic
// kernel at space orders 4, 8, 12 — spatially-blocked baseline vs wave-front
// temporal blocking.
//
// Methodology (see DESIGN.md): machine ceilings come from microbenchmark
// calibration (cached in .tempest_ceilings.json per host fingerprint;
// --recalibrate forces a fresh run); per-kernel DRAM arithmetic intensity
// comes from replaying the kernel's exact address trace through the LRU
// cache simulator on a reduced grid with a proportionally scaled hierarchy;
// achieved GFLOP/s comes from a real timed run at bench scale with the
// analytic flop model. On machines with a hardware PMU the timed run also
// yields *measured* traffic (LLC / L1d miss x line size), giving measured
// bandwidth + AI columns and a model-vs-measured validation verdict per
// point; without one, those columns read 0/unavailable and the modelled
// numbers stand alone (exactly the degradation ISSUE.md requires).
//
// Paper shape to reproduce: the WTB points sit at *higher AI* than the
// baseline points (less DRAM traffic for the same flops) — at SO 4 breaking
// through the DRAM/L3 ceiling that caps the baseline — with the gap
// narrowing as the space order grows.
//
// Usage: fig11_roofline [--size=160] [--steps=N] [--so=4,8,12]
//                       [--sim-size=48] [--sim-steps=8] [--csv] [--full]
//                       [--recalibrate] [--json[=BENCH_fig11_roofline.json]]

#include "common.hpp"
#include "tempest/cachesim/instrumented_acoustic.hpp"
#include "tempest/perf/calibrate.hpp"
#include "tempest/perf/metrics.hpp"
#include "tempest/perf/report.hpp"
#include "tempest/perf/roofline.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  const util::Cli cli(argc, argv);
  const BaseConfig cfg = BaseConfig::parse(cli, /*default_size=*/256);
  Session session("fig11_roofline", cli);
  const trace::Session trace_session(cfg.trace_path, cfg.metrics_path);
  const auto so_list = cli.get_int_list("so", {4, 8, 12});
  const int sim_size = static_cast<int>(cli.get_int("sim-size", 48));
  const int sim_steps = static_cast<int>(cli.get_int("sim-steps", 8));
  session.add_config("size", cfg.size);
  session.add_config("reps", cfg.reps);
  session.add_config("full", cfg.full);
  session.add_config("sim_size", sim_size);
  session.add_config("sim_steps", sim_steps);

  std::cerr << "calibrating machine ceilings (cached: .tempest_ceilings.json)"
            << "...\n";
  perf::Roofline roofline(perf::load_or_calibrate(
      /*quick=*/!cfg.full, /*force=*/cli.get_flag("recalibrate")));

  // Scaled-down hierarchy for the trace replay, preserving the *ratios*
  // that decide cache behaviour at bench scale: working-set:L3 ~= 1.35
  // (5 fields x 256^3 x 4B vs a 260 MB LLC) and L2:L3 ~= 1:128. Cache
  // geometry needs power-of-two set counts, so sizes round to the nearest
  // admissible value. The replay tile is likewise scaled so its live set
  // occupies the same fraction of the simulated L3 as the timed run's tile
  // does of the real one.
  const double fields_bytes = 5.0 * sim_size * sim_size * sim_size * 4.0;
  auto pow2_cache = [](double target_bytes, int ways) {
    std::uint64_t sets = 1;
    while (static_cast<double>(2 * sets) * ways * 64 <= target_bytes)
      sets *= 2;
    return cachesim::CacheConfig{sets * static_cast<std::uint64_t>(ways) * 64,
                                 ways, 64};
  };
  const cachesim::CacheConfig sl1{32 * 1024, 8, 64};
  const cachesim::CacheConfig sl2 = pow2_cache(fields_bytes / 1.35 / 128, 8);
  const cachesim::CacheConfig sl3 = pow2_cache(fields_bytes / 1.35, 16);
  const int sim_tile = std::max(8, sim_size / 4);

  util::Table table({"kernel", "schedule", "ai_dram", "gflops", "gpts",
                     "dram_roof_gflops", "ai_meas", "dram_gbps_meas",
                     "verdict"});

  for (long so : so_list) {
    const int nt = steps_for_kernel("acoustic", cfg.full,
                                    cli.get_int("steps", 0));
    physics::Geometry geom{cfg.extents(), 10.0, static_cast<int>(so),
                           cfg.nbl};
    const auto model = physics::make_acoustic_layered(geom);
    const double flops_pp =
        perf::acoustic_flops_per_point(static_cast<int>(so));

    for (bool wavefront : {false, true}) {
      // (1) Modelled DRAM/L2 traffic from the trace replay, per update.
      cachesim::TraceConfig trace;
      trace.extents = {sim_size, sim_size, sim_size};
      trace.space_order = static_cast<int>(so);
      trace.t_begin = 1;
      trace.t_end = 1 + sim_steps;
      trace.tiles = core::TileSpec{8, sim_tile, sim_tile, 8, 8};
      trace.wavefront = wavefront;
      cachesim::CacheHierarchy hierarchy(sl1, sl2, sl3);
      const long long sim_updates =
          cachesim::replay_acoustic_trace(trace, hierarchy);
      const double ai = static_cast<double>(sim_updates) * flops_pp /
                        hierarchy.traffic().dram_bytes;
      const double dram_bpp =
          hierarchy.traffic().dram_bytes / static_cast<double>(sim_updates);
      const double l2_bpp =
          hierarchy.traffic().l2_bytes / static_cast<double>(sim_updates);

      // (2) Achieved GFLOP/s (+ PMU traffic, where available) from a real
      // timed run.
      physics::PropagatorOptions opts;
      opts.tiles = core::TileSpec{8, 64, 64, 8, 8};
      physics::AcousticPropagator prop(model, opts);
      sparse::SparseTimeSeries src = make_source(geom.extents, nt, prop.dt());
      const std::string name = "acoustic-so" + std::to_string(so) +
                               (wavefront ? "-wtb" : "-baseline");
      CaseResult& c = measure(
          session, name,
          {{"kernel", "acoustic"}, {"so", std::to_string(so)},
           {"schedule", wavefront ? "wavefront" : "space_blocked"}},
          prop,
          wavefront ? physics::Schedule::Wavefront
                    : physics::Schedule::SpaceBlocked,
          src, nullptr, cfg.reps);
      const int nreps = static_cast<int>(c.rep_seconds.size());
      const physics::RunStats stats = best_stats(c);
      const double gflops =
          perf::gflops(stats.point_updates, flops_pp, stats.seconds);

      // The PMU window spans all reps: derive measured rates over the
      // total work and total wall time of that window.
      const long long total_updates = c.point_updates * nreps;
      const perf::DerivedRates rates =
          perf::derive_rates(total_updates, flops_pp, c.total_s(), c.pmu);

      // (3) Model-vs-measured: cachesim-predicted traffic scaled to the
      // timed run's update count vs PMU miss x line-size traffic.
      const perf::TrafficValidation vdram = perf::validate_traffic(
          name + "/dram", dram_bpp * static_cast<double>(total_updates),
          c.pmu.dram_bytes(), c.pmu.valid(perf::pmu::Event::LlcMisses));
      const perf::TrafficValidation vl2 = perf::validate_traffic(
          name + "/l2", l2_bpp * static_cast<double>(total_updates),
          c.pmu.l2_bytes(), c.pmu.valid(perf::pmu::Event::L1dMisses));
      session.add_validation(vdram);
      session.add_validation(vl2);

      c.derived["gflops_model"] = gflops;
      c.derived["ai_dram_model"] = ai;
      c.derived["dram_bytes_per_update_model"] = dram_bpp;
      c.derived["l2_bytes_per_update_model"] = l2_bpp;
      c.derived["measured_ai"] = rates.measured_ai;
      c.derived["measured_dram_gbps"] = rates.measured_dram_gbps;
      c.derived["measured_l2_gbps"] = rates.measured_l2_gbps;
      c.derived["ipc"] = rates.ipc;

      roofline.add_point({name, ai, gflops});
      if (rates.pmu_hardware) {
        roofline.add_point({name + "-measured", rates.measured_ai, gflops});
      }
      std::cerr << "  " << name << ": AI " << ai << ", " << gflops
                << " GFLOP/s (min " << c.min_s() << "s, median "
                << c.median_s() << "s); dram verdict "
                << perf::to_string(vdram.verdict) << " (ratio " << vdram.ratio
                << "), l2 verdict " << perf::to_string(vl2.verdict)
                << " (ratio " << vl2.ratio << ")\n";
      table.add_row({"acoustic-so" + std::to_string(so),
                     wavefront ? "wavefront" : "space-blocked",
                     util::Table::num(ai, 3), util::Table::num(gflops, 2),
                     util::Table::num(stats.gpoints_per_s(), 4),
                     util::Table::num(roofline.attainable_dram(ai), 2),
                     util::Table::num(rates.measured_ai, 3),
                     util::Table::num(rates.measured_dram_gbps, 2),
                     perf::to_string(vdram.verdict)});
    }
  }

  session.set_roofline(roofline);
  std::cout << "# Figure 11: cache-aware roofline, acoustic kernel ("
            << cfg.size << "^3 timed runs, " << sim_size
            << "^3 trace replay)\n";
  roofline.print(std::cout);
  emit(table, cfg.csv);
  return 0;
}
