// Table I reproduction: optimal (tile_x, tile_y, block_x, block_y) shapes
// for the wave-front temporally blocked kernels after autotuning, per
// problem and space order.
//
// The paper swept the whole parameter space per (problem, order,
// architecture); the default here sweeps the symmetric subspace (the shape
// all but one of Table I's optima take) for tractable runtime, and
// --full-sweep enumerates asymmetric shapes exactly as the paper did.
//
// Usage: table1_autotune [--size=128] [--steps=N] [--so=4,8,12]
//                        [--kernels=acoustic,elastic,tti,vti]
//                        [--schedule=wavefront|diamond]
//                        [--tiles=32,64,128,256] [--blocks=4,8,16]
//                        [--tile-t=8] [--full-sweep] [--csv] [--full]
//                        [--json[=BENCH_table1_autotune.json]]
//
// --schedule picks which temporally blocked schedule the trial entry runs
// (both route through the same engine, so the same tile space applies).

#include <sstream>

#include "common.hpp"
#include "tempest/autotune/autotune.hpp"

namespace {

using namespace bench;

template <typename Model, typename Propagator>
tempest::autotune::SweepResult tune(const Model& model, int nt,
                                    const std::vector<core::TileSpec>& specs,
                                    int reps, physics::Schedule sched) {
  physics::PropagatorOptions opts;
  Propagator prop(model, opts);
  sparse::SparseTimeSeries src =
      make_source(model.geom.extents, nt, prop.dt());

  return tempest::autotune::sweep(
      specs,
      [&](const core::TileSpec& spec) {
        physics::PropagatorOptions o;
        o.tiles = spec;
        Propagator p(model, o);
        return p.run(sched, src, nullptr).seconds;
      },
      reps);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const BaseConfig cfg = BaseConfig::parse(cli, /*default_size=*/192);
  Session session("table1_autotune", cli);
  const trace::Session trace_session(cfg.trace_path, cfg.metrics_path);
  const auto so_list = cli.get_int_list("so", {4, 8, 12});
  session.add_config("size", cfg.size);
  session.add_config("reps", cfg.reps);
  session.add_config("full_sweep", cli.get_flag("full-sweep"));
  const physics::Schedule sched =
      physics::schedule_from_string(cli.get("schedule", "wavefront"));
  session.add_config("schedule", std::string(physics::to_string(sched)));

  tempest::autotune::CandidateSpace space;
  space.symmetric = !cli.get_flag("full-sweep");
  {
    const auto t = cli.get_int_list("tiles", {32, 64, 128, 256});
    space.tile_sizes.assign(t.begin(), t.end());
    const auto b = cli.get_int_list("blocks", {4, 8, 16});
    space.block_sizes.assign(b.begin(), b.end());
    const auto tt = cli.get_int_list("tile-t", {8});
    space.tile_t.assign(tt.begin(), tt.end());
  }
  const auto specs = tempest::autotune::candidates(cfg.extents(), space);
  std::cerr << "sweeping " << specs.size() << " tile shapes per problem\n";

  util::Table table({"problem", "tile_x", "tile_y", "block_x", "block_y",
                     "tile_t", "best_s"});
  std::stringstream kernels_ss(cli.get("kernels", "acoustic,elastic,tti"));
  std::string kernel;
  while (std::getline(kernels_ss, kernel, ',')) {
    for (long so : so_list) {
      const int nt = steps_for_kernel(kernel, cfg.full,
                                      cli.get_int("steps", 0));
      physics::Geometry geom{
          cfg.extents(), (kernel == "tti" || kernel == "vti") ? 20.0 : 10.0,
          static_cast<int>(so), cfg.nbl};
      tempest::autotune::SweepResult result;
      std::string label;
      if (kernel == "acoustic") {
        label = "Acoustic O(2," + std::to_string(so) + ")";
        result = tune<physics::AcousticModel, physics::AcousticPropagator>(
            physics::make_acoustic_layered(geom), nt, specs, cfg.reps, sched);
      } else if (kernel == "elastic") {
        label = "Elastic O(1," + std::to_string(so) + ")";
        result = tune<physics::ElasticModel, physics::ElasticPropagator>(
            physics::make_elastic_layered(geom), nt, specs, cfg.reps, sched);
      } else if (kernel == "vti") {
        label = "VTI O(2," + std::to_string(so) + ")";
        physics::TTIModel model = physics::make_tti_layered(geom);
        model.theta.fill(0.0f);
        model.phi.fill(0.0f);
        result = tune<physics::TTIModel, physics::VTIPropagator>(
            model, nt, specs, cfg.reps, sched);
      } else {
        label = "TTI O(2," + std::to_string(so) + ")";
        result = tune<physics::TTIModel, physics::TTIPropagator>(
            physics::make_tti_layered(geom), nt, specs, cfg.reps, sched);
      }
      const core::TileSpec& b = result.best.spec;
      std::cerr << "  " << label << " -> tile " << b.tile_x << 'x' << b.tile_y
                << " block " << b.block_x << 'x' << b.block_y << " ("
                << result.best.seconds << " s)\n";

      // Record the winning shape (and the PMU evidence for *why* it won:
      // the best candidate should carry the lowest LLC-miss traffic).
      CaseResult c;
      c.name = label;
      c.tags = {{"kernel", kernel},
                {"so", std::to_string(so)},
                {"tile_x", std::to_string(b.tile_x)},
                {"tile_y", std::to_string(b.tile_y)},
                {"block_x", std::to_string(b.block_x)},
                {"block_y", std::to_string(b.block_y)},
                {"tile_t", std::to_string(b.tile_t)}};
      c.rep_seconds.push_back(result.best.seconds);
      c.pmu = result.best.pmu;
      c.derived["candidates_evaluated"] =
          static_cast<double>(result.evaluated.size());
      if (c.pmu.valid(tempest::perf::pmu::Event::LlcMisses)) {
        c.derived["best_llc_misses"] = static_cast<double>(
            c.pmu[tempest::perf::pmu::Event::LlcMisses]);
      }
      session.add_case(std::move(c));
      table.add_row({label, std::to_string(b.tile_x),
                     std::to_string(b.tile_y), std::to_string(b.block_x),
                     std::to_string(b.block_y), std::to_string(b.tile_t),
                     util::Table::num(result.best.seconds, 3)});
    }
  }

  std::cout << "# Table I: optimal tile-block shapes after tuning WTB ("
            << cfg.size << "^3 grid)\n";
  emit(table, cfg.csv);
  return 0;
}
