// Micro-benchmark µ4: wave-front tile-shape sensitivity (the ablation behind
// Table I). Sweeps the temporal tile height and the spatial tile edge for
// the acoustic SO4 kernel at a fixed grid, reporting propagation throughput.
// tile_t = 1 degenerates to spatial blocking (plus skew overhead), so the
// curve shows exactly how much of the win is *temporal* reuse.

#include <benchmark/benchmark.h>

#include "micro_common.hpp"
#include "tempest/physics/acoustic.hpp"
#include "tempest/sparse/survey.hpp"
#include "tempest/sparse/wavelet.hpp"

namespace {

using namespace tempest;

const int kSize = bench::micro_size(256);
const int kSteps = bench::micro_steps(16);

void BM_WavefrontTiles(benchmark::State& state) {
  const int tile_t = static_cast<int>(state.range(0));
  const int tile_xy = static_cast<int>(state.range(1));
  physics::Geometry geom{{kSize, kSize, kSize}, 10.0, 4, 8};
  const auto model = physics::make_acoustic_layered(geom);
  physics::PropagatorOptions opts;
  opts.tiles = core::TileSpec{tile_t, tile_xy, tile_xy, 8, 8};
  physics::AcousticPropagator prop(model, opts);
  sparse::SparseTimeSeries src(sparse::single_center_source(geom.extents),
                               kSteps);
  src.broadcast_signature(sparse::ricker(kSteps, prop.dt(), 0.010));

  long long updates = 0;
  for (auto _ : state) {
    const physics::RunStats s =
        prop.run(physics::Schedule::Wavefront, src, nullptr);
    updates += s.point_updates;
  }
  state.counters["GPts/s"] = benchmark::Counter(
      static_cast<double>(updates) / 1e9, benchmark::Counter::kIsRate);
}

void BM_DiamondTiles(benchmark::State& state) {
  // The alternative temporal-blocking family on the same kernel: diamond
  // bands of the given height with an auto-sized x period.
  const int height = static_cast<int>(state.range(0));
  physics::Geometry geom{{kSize, kSize, kSize}, 10.0, 4, 8};
  const auto model = physics::make_acoustic_layered(geom);
  physics::PropagatorOptions opts;
  opts.tiles = core::TileSpec{height, 64, 64, 8, 8};
  physics::AcousticPropagator prop(model, opts);
  sparse::SparseTimeSeries src(sparse::single_center_source(geom.extents),
                               kSteps);
  src.broadcast_signature(sparse::ricker(kSteps, prop.dt(), 0.010));

  long long updates = 0;
  for (auto _ : state) {
    const physics::RunStats s =
        prop.run(physics::Schedule::Diamond, src, nullptr);
    updates += s.point_updates;
  }
  state.counters["GPts/s"] = benchmark::Counter(
      static_cast<double>(updates) / 1e9, benchmark::Counter::kIsRate);
}

void BM_SpaceBlockedReference(benchmark::State& state) {
  physics::Geometry geom{{kSize, kSize, kSize}, 10.0, 4, 8};
  const auto model = physics::make_acoustic_layered(geom);
  physics::PropagatorOptions opts;
  physics::AcousticPropagator prop(model, opts);
  sparse::SparseTimeSeries src(sparse::single_center_source(geom.extents),
                               kSteps);
  src.broadcast_signature(sparse::ricker(kSteps, prop.dt(), 0.010));

  long long updates = 0;
  for (auto _ : state) {
    const physics::RunStats s =
        prop.run(physics::Schedule::SpaceBlocked, src, nullptr);
    updates += s.point_updates;
  }
  state.counters["GPts/s"] = benchmark::Counter(
      static_cast<double>(updates) / 1e9, benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK(BM_WavefrontTiles)
    ->Args({1, 64})
    ->Args({2, 64})
    ->Args({4, 64})
    ->Args({8, 64})
    ->Args({16, 64})
    ->Args({8, 32})
    ->Args({8, 128})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);
BENCHMARK(BM_DiamondTiles)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);
BENCHMARK(BM_SpaceBlockedReference)->Unit(benchmark::kMillisecond)->Iterations(2);

TEMPEST_MICRO_MAIN("micro_wavefront")
