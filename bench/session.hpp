#pragma once

// Machine-readable bench harness: every driver (fig9/fig10/fig11/table1 +
// the four micro benches) funnels its measurements through a
// bench::Session, which emits a schema-versioned BENCH_<name>.json next
// to the human-readable ASCII/CSV tables. Successive PRs diff these files
// to track the perf trajectory (ROADMAP "fast as the hardware allows").
//
// Flags: --json=FILE (or bare --json for the default BENCH_<name>.json);
// --openmetrics=FILE (or bare --openmetrics for BENCH_<name>.om) exports
// the same measurement window as an OpenMetrics textfile — trace counters,
// obs latency histograms, PMU gauges — for Prometheus-style ingestion.
// The JSON carries: the driver config, an environment fingerprint, PMU
// availability (with the captured errno reason when degraded), per-case
// wall times for *every* repetition plus min/median, trace work-counter
// deltas, PMU samples, derived rates (model GFLOP/s, measured bandwidth
// and arithmetic intensity), roofline ceilings/points, and
// model-vs-measured validation verdicts.
//
// Schema: "tempest-bench-v1". scripts/bench_check.py validates emitted
// files in CI; bump the schema string on breaking changes.

#include <algorithm>
#include <ctime>
#include <deque>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#ifdef _OPENMP
#include <omp.h>
#endif

#include "tempest/obs/metrics.hpp"
#include "tempest/obs/openmetrics.hpp"
#include "tempest/perf/calibrate.hpp"
#include "tempest/perf/pmu.hpp"
#include "tempest/perf/report.hpp"
#include "tempest/perf/roofline.hpp"
#include "tempest/physics/propagator.hpp"
#include "tempest/trace/trace.hpp"
#include "tempest/util/cli.hpp"
#include "tempest/util/json.hpp"
#include "tempest/util/log.hpp"
#include "tempest/util/threads.hpp"

namespace bench {

inline constexpr const char* kBenchSchema = "tempest-bench-v1";

/// One measured benchmark case (one table row / figure point).
struct CaseResult {
  std::string name;
  std::map<std::string, std::string> tags;  ///< kernel, schedule, so, ...
  std::vector<double> rep_seconds;          ///< every repetition, in order
  long long point_updates = 0;              ///< per repetition
  double precompute_seconds = 0.0;
  tempest::trace::CounterSnapshot counters{};  ///< delta across all reps
  tempest::perf::pmu::Sample pmu{};            ///< delta across all reps
  std::map<std::string, double> derived;       ///< gflops, measured_ai, ...

  [[nodiscard]] double min_s() const {
    double m = 0.0;
    for (const double s : rep_seconds) m = (m == 0.0 || s < m) ? s : m;
    return m;
  }
  [[nodiscard]] double median_s() const {
    if (rep_seconds.empty()) return 0.0;
    std::vector<double> sorted = rep_seconds;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t n = sorted.size();
    return n % 2 == 1 ? sorted[n / 2]
                      : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
  }
  [[nodiscard]] double total_s() const {
    double t = 0.0;
    for (const double s : rep_seconds) t += s;
    return t;
  }
};

/// Result row captured from a google-benchmark run (micro benches).
struct BenchmarkRun {
  std::string name;
  double real_s = 0.0;  ///< real time per iteration
  long long iterations = 0;
  std::map<std::string, double> counters;
};

class Session {
 public:
  /// `bench_name` names the driver (fig11_roofline, micro_stencil, ...).
  /// JSON is emitted only when --json was given; bare `--json` selects
  /// BENCH_<bench_name>.json. Construct *early* — before the first
  /// OpenMP region — so the inherit-scope PMU group observes the worker
  /// threads too.
  Session(std::string bench_name, const tempest::util::Cli& cli)
      : name_(std::move(bench_name)),
        group_(tempest::perf::pmu::Scope::Process) {
    if (cli.has("json")) {
      json_path_ = cli.get("json", "");
      if (json_path_.empty()) json_path_ = "BENCH_" + name_ + ".json";
    }
    if (cli.has("openmetrics")) {
      openmetrics_path_ = cli.get("openmetrics", "");
      if (openmetrics_path_.empty()) {
        openmetrics_path_ = "BENCH_" + name_ + ".om";
      }
      tempest::obs::reset_metrics();
      tempest::obs::set_enabled(true);
    }
    if (active()) {
      // Work counters feed the JSON even when no --trace/--metrics sink
      // was requested.
      tempest::trace::set_enabled(true);
    }
    start_ = group_.read();
  }

  ~Session() { write(); }
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  [[nodiscard]] bool active() const { return !json_path_.empty(); }
  [[nodiscard]] const tempest::perf::pmu::CounterGroup& group() const {
    return group_;
  }

  void add_config(const std::string& key, std::string value) {
    config_.emplace_back(key, std::move(value));
  }
  void add_config(const std::string& key, long long value) {
    add_config(key, std::to_string(value));
  }
  void add_config(const std::string& key, int value) {
    add_config(key, std::to_string(value));
  }
  void add_config(const std::string& key, bool value) {
    add_config(key, std::string(value ? "true" : "false"));
  }

  /// The returned reference stays valid for the Session's lifetime (the
  /// drivers hold a case across later add_case calls — deque storage).
  CaseResult& add_case(CaseResult c) {
    cases_.push_back(std::move(c));
    return cases_.back();
  }

  void set_roofline(const tempest::perf::Roofline& r) {
    ceilings_ = r.ceilings();
    points_ = r.points();
    have_roofline_ = true;
  }

  void add_validation(tempest::perf::TrafficValidation v) {
    validations_.push_back(std::move(v));
  }

  void add_benchmark_run(BenchmarkRun run) {
    benchmark_runs_.push_back(std::move(run));
  }

  /// Emit the JSON and OpenMetrics sinks now (also called from the
  /// destructor; idempotent).
  void write() {
    if (written_) return;
    written_ = true;
    if (!openmetrics_path_.empty()) {
      tempest::obs::OpenMetricsOptions om;
      const tempest::perf::pmu::Sample delta = group_.read() - start_;
      om.pmu = &delta;
      if (tempest::obs::write_openmetrics(openmetrics_path_, om)) {
        tempest::util::info("bench: wrote " + openmetrics_path_);
      } else {
        tempest::util::warn("bench: cannot write " + openmetrics_path_);
      }
    }
    if (!active()) return;
    std::ofstream os(json_path_);
    if (!os) {
      tempest::util::warn("bench: cannot write " + json_path_);
      return;
    }
    write_json(os);
    if (os) {
      tempest::util::info("bench: wrote " + json_path_);
    } else {
      tempest::util::warn("bench: short write to " + json_path_);
    }
  }

 private:
  void write_json(std::ostream& os) const {
    namespace pmu = tempest::perf::pmu;
    using tempest::util::JsonWriter;
    JsonWriter w(os);
    w.begin_object();
    w.field("schema", kBenchSchema);
    w.field("name", name_);
    w.field("timestamp", timestamp_utc());

    w.key("env");
    w.begin_object();
    w.field("fingerprint", tempest::perf::host_fingerprint());
    w.field("hardware_concurrency",
            static_cast<long long>(std::thread::hardware_concurrency()));
#ifdef _OPENMP
    w.field("omp_max_threads", static_cast<long long>(omp_get_max_threads()));
#else
    w.field("omp_max_threads", 1);
#endif
    // Authoritative runtime probe (the tsan preset compiles with
    // -fopenmp-simd only: _OPENMP is unset, the pool backend carries the
    // parallelism, and this field keeps the JSON honest about it).
    w.field("omp_runtime", tempest::util::openmp_runtime());
#if defined(__unix__) || defined(__APPLE__)
    w.field("page_size", static_cast<long long>(sysconf(_SC_PAGESIZE)));
#endif
#if defined(__VERSION__)
    w.field("compiler", __VERSION__);
#endif
#if defined(NDEBUG)
    w.field("assertions", false);
#else
    w.field("assertions", true);
#endif
#if defined(TEMPEST_TRACE_DISABLED)
    w.field("trace_instrumentation", false);
#else
    w.field("trace_instrumentation", true);
#endif
    w.end_object();

    const pmu::Availability& avail = pmu::availability();
    w.key("pmu");
    w.begin_object();
    w.field("available", avail.any);
    w.field("hardware", avail.hardware);
    w.field("reason", avail.reason);
    w.key("process_delta");
    write_sample(w, group_.read() - start_);
    w.end_object();

    w.key("config");
    w.begin_object();
    for (const auto& [k, v] : config_) w.field(k, v);
    w.end_object();

    w.key("cases");
    w.begin_array();
    for (const CaseResult& c : cases_) {
      w.begin_object();
      w.field("name", c.name);
      w.key("tags");
      w.begin_object();
      for (const auto& [k, v] : c.tags) w.field(k, v);
      w.end_object();
      w.key("reps_s");
      w.begin_array();
      for (const double s : c.rep_seconds) w.value(s);
      w.end_array();
      w.field("min_s", c.min_s());
      w.field("median_s", c.median_s());
      w.field("point_updates", c.point_updates);
      w.field("precompute_s", c.precompute_seconds);
      w.key("counters");
      w.begin_object();
      for (int i = 0; i < tempest::trace::kNumCounters; ++i) {
        w.field(tempest::trace::to_string(
                    static_cast<tempest::trace::Counter>(i)),
                c.counters[static_cast<std::size_t>(i)]);
      }
      w.end_object();
      w.key("pmu");
      write_sample(w, c.pmu);
      w.key("derived");
      w.begin_object();
      for (const auto& [k, v] : c.derived) w.field(k, v);
      w.end_object();
      w.end_object();
    }
    w.end_array();

    if (have_roofline_) {
      w.key("roofline");
      w.begin_object();
      w.key("ceilings");
      w.begin_object();
      w.field("peak_gflops", ceilings_.peak_gflops);
      w.field("l1_gbps", ceilings_.l1_gbps);
      w.field("l2_gbps", ceilings_.l2_gbps);
      w.field("l3_gbps", ceilings_.l3_gbps);
      w.field("dram_gbps", ceilings_.dram_gbps);
      w.end_object();
      w.key("points");
      w.begin_array();
      for (const auto& p : points_) {
        w.begin_object();
        w.field("name", p.name);
        w.field("ai", p.ai);
        w.field("gflops", p.gflops);
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }

    w.key("validation");
    w.begin_array();
    for (const auto& v : validations_) {
      w.begin_object();
      w.field("name", v.name);
      w.field("predicted_bytes", v.predicted_bytes);
      w.field("measured_bytes", v.measured_bytes);
      w.field("ratio", v.ratio);
      w.field("warn_ratio", v.warn_ratio);
      w.field("fail_ratio", v.fail_ratio);
      w.field("verdict", tempest::perf::to_string(v.verdict));
      w.end_object();
    }
    w.end_array();

    if (!benchmark_runs_.empty()) {
      w.key("benchmark_runs");
      w.begin_array();
      for (const BenchmarkRun& r : benchmark_runs_) {
        w.begin_object();
        w.field("name", r.name);
        w.field("real_s", r.real_s);
        w.field("iterations", r.iterations);
        w.key("counters");
        w.begin_object();
        for (const auto& [k, v] : r.counters) w.field(k, v);
        w.end_object();
        w.end_object();
      }
      w.end_array();
    }

    w.end_object();
  }

  static void write_sample(tempest::util::JsonWriter& w,
                           const tempest::perf::pmu::Sample& s) {
    namespace pmu = tempest::perf::pmu;
    w.begin_object();
    w.field("valid_mask", static_cast<long long>(s.valid_mask));
    w.key("values");
    w.begin_object();
    for (int i = 0; i < pmu::kNumEvents; ++i) {
      const pmu::Event e = static_cast<pmu::Event>(i);
      if (s.valid(e)) w.field(pmu::to_string(e), s[e]);
    }
    w.end_object();
    w.end_object();
  }

  static std::string timestamp_utc() {
    const std::time_t now = std::time(nullptr);
    std::tm tm{};
#if defined(_WIN32)
    gmtime_s(&tm, &now);
#else
    gmtime_r(&now, &tm);
#endif
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
  }

  std::string name_;
  std::string json_path_;
  std::string openmetrics_path_;
  tempest::perf::pmu::CounterGroup group_;
  tempest::perf::pmu::Sample start_{};
  std::vector<std::pair<std::string, std::string>> config_;
  std::deque<CaseResult> cases_;
  tempest::perf::MachineCeilings ceilings_{};
  std::vector<tempest::perf::RooflinePoint> points_;
  bool have_roofline_ = false;
  std::vector<tempest::perf::TrafficValidation> validations_;
  std::vector<BenchmarkRun> benchmark_runs_;
  bool written_ = false;
};

/// Run `run_once` (returning physics::RunStats) `reps` times, recording
/// every repetition's wall time plus the trace-counter and PMU deltas of
/// the whole measurement window. This is the one spelling of "best-of-N"
/// the drivers share: min is the headline (least-perturbed) number,
/// median and the full rep list ride in the JSON for noise analysis.
template <typename RunFn>
CaseResult measure_case(Session& session, std::string name,
                        std::map<std::string, std::string> tags, int reps,
                        RunFn&& run_once) {
  using namespace tempest;
  CaseResult c;
  c.name = std::move(name);
  c.tags = std::move(tags);
  const trace::CounterSnapshot before = trace::snapshot();
  const perf::pmu::PmuRegion region(session.group());
  for (int i = 0; i < std::max(1, reps); ++i) {
    const physics::RunStats s = run_once();
    c.rep_seconds.push_back(s.seconds);
    c.point_updates = s.point_updates;
    c.precompute_seconds = s.precompute_seconds;
  }
  c.pmu = region.delta();
  const trace::CounterSnapshot after = trace::snapshot();
  for (int i = 0; i < trace::kNumCounters; ++i) {
    c.counters[static_cast<std::size_t>(i)] =
        after[static_cast<std::size_t>(i)] -
        before[static_cast<std::size_t>(i)];
  }
  return c;
}

/// The RunStats of the fastest repetition, reconstructed from a
/// CaseResult (what the legacy best_of() returned).
[[nodiscard]] inline tempest::physics::RunStats best_stats(
    const CaseResult& c) {
  tempest::physics::RunStats s;
  s.seconds = c.min_s();
  s.precompute_seconds = c.precompute_seconds;
  s.point_updates = c.point_updates;
  return s;
}

}  // namespace bench
