// Post-mortem decoder for flight-recorder black boxes (.tfbr): the CLI end
// of tempest::obs::FlightRecorder. Three modes, combinable:
//
//   blackbox_dump FILE...                 summary + last events + open spans
//   blackbox_dump --verify FILE...        integrity check only; exit 0 iff
//                                         every file passes verify_blackbox()
//   blackbox_dump --tail=N FILE...        show the last N decoded events
//   blackbox_dump --chrome=OUT FILE       convert one box to Chrome-trace
//                                         JSON (load in about://tracing)
//
// The tool never writes to the box; a corrupt header is reported and counts
// as failure, torn slots are reported per the recovery rules (see
// recorder.hpp) and are only fatal under --verify when they exceed the
// writer-lane count.

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "tempest/obs/recorder.hpp"
#include "tempest/util/cli.hpp"
#include "tempest/util/json.hpp"

namespace {

using tempest::obs::BlackboxContents;
using tempest::obs::BlackboxEvent;

/// One formatted row of the human-readable tail.
void print_event(const BlackboxEvent& e) {
  std::printf("  %8llu  %12.6f ms  %-8s  %-28s  tid %2u",
              static_cast<unsigned long long>(e.seq),
              static_cast<double>(e.ts_ns) / 1e6,
              tempest::obs::kind_name(e.kind), e.name.c_str(), e.tid);
  switch (e.kind) {
    case tempest::obs::kSpanEnter:
      if (e.b != 0) std::printf("  arg=%lld", static_cast<long long>(e.a));
      break;
    case tempest::obs::kSpanExit:
      std::printf("  dur=%.6f ms", static_cast<double>(e.a) / 1e6);
      break;
    case tempest::obs::kCounterDelta:
      std::printf("  delta=%lld", static_cast<long long>(e.a));
      break;
    case tempest::obs::kHealth:
      std::printf("  max|u|=%g  step=%lld", std::bit_cast<double>(e.a),
                  static_cast<long long>(e.b));
      break;
    case tempest::obs::kJobState:
      std::printf("  shot=%lld  level=%lld", static_cast<long long>(e.a),
                  static_cast<long long>(e.b));
      break;
    default:
      std::printf("  a=%lld  b=%lld", static_cast<long long>(e.a),
                  static_cast<long long>(e.b));
      break;
  }
  std::printf("\n");
}

void print_summary(const std::string& path, const BlackboxContents& box,
                   std::size_t tail) {
  const std::uint64_t decoded = box.events.size();
  const std::uint64_t overwritten =
      box.total_recorded >= decoded + box.torn_slots
          ? box.total_recorded - decoded - box.torn_slots
          : 0;
  std::printf("%s: shot %u, %u lanes x %u slots, %llu recorded "
              "(%llu decoded, %u torn, %llu overwritten by ring wrap)\n",
              path.c_str(), box.geom.shot, box.geom.lanes,
              box.geom.lane_capacity,
              static_cast<unsigned long long>(box.total_recorded),
              static_cast<unsigned long long>(decoded), box.torn_slots,
              static_cast<unsigned long long>(overwritten));
  const std::size_t n = std::min<std::size_t>(tail, box.events.size());
  if (n > 0) {
    std::printf("last %zu event(s):\n", n);
    for (std::size_t i = box.events.size() - n; i < box.events.size(); ++i) {
      print_event(box.events[i]);
    }
  }
  if (!box.open_spans.empty()) {
    std::printf("open at death (outermost first):\n");
    for (const std::string& s : box.open_spans) {
      std::printf("  %s\n", s.c_str());
    }
  }
}

/// Chrome-trace JSON: exited spans become complete ("X") events, spans still
/// open at death become begin ("B") events with no matching end — exactly how
/// the trace viewer renders a crash. Everything else is an instant event.
void write_chrome(const std::string& out, const BlackboxContents& box) {
  std::ofstream os(out);
  if (!os.good()) {
    std::cerr << "blackbox_dump: cannot open '" << out << "' for write\n";
    std::exit(2);
  }
  tempest::util::JsonWriter w(os);
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  for (const BlackboxEvent& e : box.events) {
    if (e.kind == tempest::obs::kSpanEnter) continue;  // folded into exits
    w.begin_object();
    w.field("name", e.name);
    w.field("pid", static_cast<long long>(box.geom.shot));
    w.field("tid", static_cast<long long>(e.tid));
    if (e.kind == tempest::obs::kSpanExit) {
      w.field("ph", "X");
      w.field("ts", static_cast<double>(e.ts_ns - e.a) / 1e3);
      w.field("dur", static_cast<double>(e.a) / 1e3);
    } else {
      w.field("ph", "i");
      w.field("ts", static_cast<double>(e.ts_ns) / 1e3);
      w.field("s", "t");
      w.key("args");
      w.begin_object();
      if (e.kind == tempest::obs::kHealth) {
        w.field("max_abs", std::bit_cast<double>(e.a));
        w.field("step", static_cast<long long>(e.b));
      } else {
        w.field("a", static_cast<long long>(e.a));
        w.field("b", static_cast<long long>(e.b));
      }
      w.end_object();
    }
    w.end_object();
  }
  // Spans open at the moment of death: begin events the viewer draws as
  // running off the right edge of the trace.
  for (const BlackboxEvent& e : box.events) {
    if (e.kind != tempest::obs::kSpanEnter) continue;
    bool open = false;
    for (const std::string& s : box.open_spans) {
      if (s == e.name) {
        open = true;
        break;
      }
    }
    if (!open) continue;
    w.begin_object();
    w.field("name", e.name);
    w.field("ph", "B");
    w.field("ts", static_cast<double>(e.ts_ns) / 1e3);
    w.field("pid", static_cast<long long>(box.geom.shot));
    w.field("tid", static_cast<long long>(e.tid));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os.flush();
  if (!os.good()) {
    std::cerr << "blackbox_dump: writing '" << out << "' failed\n";
    std::exit(2);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const tempest::util::Cli cli(argc, argv);
  const std::vector<std::string>& files = cli.positional();
  if (files.empty()) {
    std::cerr << "usage: blackbox_dump [--verify] [--tail=N] [--chrome=OUT] "
                 "FILE.tfbr...\n";
    return 2;
  }
  const bool verify = cli.get_flag("verify");
  const auto tail = static_cast<std::size_t>(cli.get_int("tail", 20));
  const std::string chrome = cli.get("chrome", "");
  if (!chrome.empty() && files.size() != 1) {
    std::cerr << "blackbox_dump: --chrome takes exactly one input file\n";
    return 2;
  }

  int failures = 0;
  for (const std::string& path : files) {
    if (verify) {
      std::string err;
      if (tempest::obs::verify_blackbox(path, &err)) {
        std::printf("%s: OK\n", path.c_str());
      } else {
        std::printf("%s: FAIL (%s)\n", path.c_str(), err.c_str());
        ++failures;
        continue;
      }
      if (chrome.empty() && !cli.has("tail")) continue;
    }
    try {
      const BlackboxContents box = tempest::obs::read_blackbox(path);
      print_summary(path, box, tail);
      if (!chrome.empty()) {
        write_chrome(chrome, box);
        std::printf("wrote Chrome trace to %s (%zu events)\n", chrome.c_str(),
                    box.events.size());
      }
    } catch (const std::exception& e) {
      std::cerr << "blackbox_dump: " << e.what() << "\n";
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
