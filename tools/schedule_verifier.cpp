// Exhaustive schedule-legality sweep: every physics kernel's declared
// access summary x every schedule family x sparse operators on/off x the
// first three lowering stages, each verified by tempest::analysis and
// printed as one table row. DSL-authored kernels ride the same matrix:
// their summaries come from dsl::lower_kernel — the structural access
// extraction, not a hand-maintained table — so a lowering bug that
// mis-declares a footprint shows up here as a contradicted verdict.
//
// Each row additionally carries the analysis::statics verdicts: the
// tile-interference race proof for the row's schedule geometry (every
// kernel), and the combined interval/CFL/lint verdict for the DSL-lowered
// kernels (the hand-written kernels have no IR tree to interpret; their
// rows print "-"). A conflict or a statics error is a contradicted row.
//
// The exit code is the paper's Section II.A claim, machine-checked: the
// naive stage-0 nest with off-the-grid sparse operators must be REJECTED
// under every temporally blocked family, and every precomputed/fused nest
// (stages 1 and 2) must be ACCEPTED — for every kernel. Any other verdict
// is a bug in the analyzer or the lowering, and the tool returns nonzero
// (which is how CI consumes it; see scripts/check.sh --analyze).
//
// Usage: schedule_verifier [--csv] [--so=N[,N...]]
//
// A comma list sweeps several space orders in ONE invocation — one table,
// one header row — so CSV consumers concatenating per-order sweeps no
// longer see interleaved headers.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "tempest/analysis/legality.hpp"
#include "tempest/analysis/statics/interference.hpp"
#include "tempest/analysis/statics/verify.hpp"
#include "tempest/dsl/expr.hpp"
#include "tempest/dsl/lower.hpp"
#include "tempest/physics/acoustic.hpp"
#include "tempest/physics/elastic.hpp"
#include "tempest/physics/tti.hpp"
#include "tempest/physics/vti.hpp"
#include "tempest/util/table.hpp"

namespace {

namespace statics = tempest::analysis::statics;
using tempest::analysis::AccessSummary;
using tempest::analysis::LegalityReport;
using tempest::analysis::ScheduleDescriptor;

/// One kernel under sweep: the declared access summary, plus the lowered
/// IR tree when the kernel came through the DSL frontend (enables the
/// statics passes that need an expression tree).
struct Entry {
  AccessSummary summary;
  std::optional<tempest::dsl::LoweredKernel> lowered;
};

/// The schedule families under test for a kernel whose per-timestep
/// dependence reach is `slope` (the declared summary radius).
std::vector<ScheduleDescriptor> schedules(int slope) {
  return {ScheduleDescriptor::reference(), ScheduleDescriptor::space_blocked(),
          ScheduleDescriptor::wavefront(slope), ScheduleDescriptor::fused(slope),
          ScheduleDescriptor::diamond(slope)};
}

/// DSL-authored kernels: lowered via the typed-IR frontend at the swept
/// space order, their summaries produced by the structural access
/// extraction rather than the physics layer's hand-maintained tables.
/// `dsl-acoustic` mirrors the hand-written acoustic stencil; `dsl-sponge`
/// is the absorbing-boundary variant whose damping coefficient is a bound
/// grid (operator class Generic, not IsoAcoustic).
std::vector<Entry> dsl_kernels(int space_order) {
  namespace dsl = tempest::dsl;
  auto lowered = [&](const char* damp_name, const char* kernel) {
    dsl::Grid g;
    dsl::TimeFunction u("u", g, space_order, 2);
    const dsl::Eq eq =
        dsl::solve(dsl::param("m") * u.dt2() +
                       dsl::param(damp_name) * u.dt() - u.laplace(),
                   u.forward());
    // dt = 0.5 ms at h = 10 m sits inside the von Neumann bound for every
    // swept order under the conventional velocity interval, so the
    // stability column proves "ok" rather than a seeded rejection.
    dsl::LoweredKernel lk = dsl::lower_kernel(eq, space_order,
                                              /*spacing=*/10.0,
                                              /*dt=*/0.5, kernel);
    Entry e{lk.summary(), std::move(lk)};
    return e;
  };
  std::vector<Entry> out;
  out.push_back(lowered("damp", "dsl-acoustic"));
  out.push_back(lowered("eta", "dsl-sponge"));
  return out;
}

/// First error code of a report, or "-" when legal.
std::string first_error(const LegalityReport& r) {
  for (const auto& d : r.diagnostics) {
    if (d.severity == tempest::analysis::Diagnostic::Severity::Error) {
      return d.code;
    }
  }
  return "-";
}

/// Statics verdict cell for a DSL-lowered kernel: "ok" or the first error
/// code of the combined interval/stability/lint report.
std::string statics_cell(const tempest::dsl::LoweredKernel& lowered) {
  statics::StaticsOptions opts;
  opts.bounds = statics::conventional_bounds(lowered.field);
  opts.resolvable = {"m", "damp", "vp", "eta"};
  const statics::StaticsReport report = statics::verify_statics(lowered, opts);
  if (report.ok()) return "ok";
  for (const auto& d : report.diagnostics()) {
    if (d.severity == tempest::analysis::Diagnostic::Severity::Error) {
      return d.code;
    }
  }
  return "error";
}

}  // namespace

int main(int argc, char** argv) {
  bool csv = false;
  std::vector<int> orders;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else if (std::strncmp(argv[i], "--so=", 5) == 0) {
      // Comma list: "--so=4,8" sweeps both orders in one table.
      for (const char* p = argv[i] + 5; *p != '\0';) {
        orders.push_back(std::atoi(p));
        while (*p != '\0' && *p != ',') ++p;
        if (*p == ',') ++p;
      }
    } else {
      std::cerr << "usage: schedule_verifier [--csv] [--so=N[,N...]]\n";
      return 2;
    }
  }
  if (orders.empty()) orders.push_back(4);
  for (const int so : orders) {
    if (so < 2 || so % 2 != 0) {
      std::cerr << "schedule_verifier: --so must be positive even orders\n";
      return 2;
    }
  }

  tempest::util::Table table({"kernel", "so", "stage", "schedule", "sparse",
                              "verdict", "errors", "first", "statics",
                              "interference"});
  int mismatches = 0;

  for (const int so : orders) {
    std::vector<Entry> kernels = {
        {tempest::physics::acoustic_access_summary(so), std::nullopt},
        {tempest::physics::tti_access_summary(so), std::nullopt},
        {tempest::physics::vti_access_summary(so), std::nullopt},
        {tempest::physics::elastic_access_summary(so), std::nullopt},
    };
    for (Entry& e : dsl_kernels(so)) kernels.push_back(std::move(e));

    for (const Entry& k : kernels) {
      const std::string statics_verdict =
          k.lowered ? statics_cell(*k.lowered) : "-";
      if (k.lowered && statics_verdict != "ok") ++mismatches;
      for (const bool sparse : {false, true}) {
        for (int stage = 0; stage <= 2; ++stage) {
          for (const ScheduleDescriptor& sched : schedules(k.summary.radius)) {
            const LegalityReport report = tempest::analysis::verify_canonical(
                k.summary, stage, /*sources=*/sparse, /*receivers=*/sparse,
                sched);
            // Section II.A: only the naive nest's off-the-grid operators are
            // incompatible with temporal blocking; everything else is legal.
            const bool expect_legal =
                !(sched.time_tiled() && sparse && stage == 0);
            bool ok = report.legal() == expect_legal;

            // The statics race proof for this row's band geometry (the
            // executors' default tile shape): every schedule the legality
            // layer admits must also be interference-free.
            const statics::InterferenceReport iref = statics::prove_race_free(
                statics::TileModel::from_summary(k.summary, sched,
                                                 /*tile_x=*/64, /*tile_y=*/64,
                                                 /*nx=*/192, /*ny=*/192,
                                                 /*receivers=*/sparse));
            if (!iref.race_free()) ok = false;
            if (!ok) ++mismatches;

            table.add_row(
                {k.summary.kernel, std::to_string(so), std::to_string(stage),
                 sched.str(), sparse ? "on" : "off",
                 report.legal() ? "legal" : "ILLEGAL",
                 std::to_string(report.errors()),
                 ok ? first_error(report)
                    : first_error(report) + "  <-- UNEXPECTED",
                 statics_verdict,
                 iref.race_free()
                     ? "race-free"
                     : "CONFLICT(" + std::to_string(iref.conflicts) + ")"});
          }
        }
      }
    }
  }

  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print_ascii(std::cout);
  }

  if (mismatches > 0) {
    std::cerr << "schedule_verifier: " << mismatches
              << " verdict(s) contradict the paper's legality theorem\n";
    return 1;
  }
  std::cout << "schedule_verifier: all " << table.rows()
            << " verdicts match the paper's legality theorem (stage-0 sparse "
               "rejected under temporal blocking; lowered nests accepted; "
               "every admitted schedule proven race-free)\n";
  return 0;
}
