// Exhaustive schedule-legality sweep: every physics kernel's declared
// access summary x every schedule family x sparse operators on/off x the
// first three lowering stages, each verified by tempest::analysis and
// printed as one table row. DSL-authored kernels ride the same matrix:
// their summaries come from dsl::lower_kernel — the structural access
// extraction, not a hand-maintained table — so a lowering bug that
// mis-declares a footprint shows up here as a contradicted verdict.
//
// The exit code is the paper's Section II.A claim, machine-checked: the
// naive stage-0 nest with off-the-grid sparse operators must be REJECTED
// under every temporally blocked family, and every precomputed/fused nest
// (stages 1 and 2) must be ACCEPTED — for every kernel. Any other verdict
// is a bug in the analyzer or the lowering, and the tool returns nonzero
// (which is how CI consumes it; see scripts/check.sh --analyze).
//
// Usage: schedule_verifier [--csv] [--so=N]

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "tempest/analysis/legality.hpp"
#include "tempest/dsl/expr.hpp"
#include "tempest/dsl/lower.hpp"
#include "tempest/physics/acoustic.hpp"
#include "tempest/physics/elastic.hpp"
#include "tempest/physics/tti.hpp"
#include "tempest/physics/vti.hpp"
#include "tempest/util/table.hpp"

namespace {

using tempest::analysis::AccessSummary;
using tempest::analysis::LegalityReport;
using tempest::analysis::ScheduleDescriptor;

/// The schedule families under test for a kernel whose per-timestep
/// dependence reach is `slope` (the declared summary radius).
std::vector<ScheduleDescriptor> schedules(int slope) {
  return {ScheduleDescriptor::reference(), ScheduleDescriptor::space_blocked(),
          ScheduleDescriptor::wavefront(slope), ScheduleDescriptor::fused(slope),
          ScheduleDescriptor::diamond(slope)};
}

/// DSL-authored kernels: lowered via the typed-IR frontend at the swept
/// space order, their summaries produced by the structural access
/// extraction rather than the physics layer's hand-maintained tables.
/// `dsl-acoustic` mirrors the hand-written acoustic stencil; `dsl-sponge`
/// is the absorbing-boundary variant whose damping coefficient is a bound
/// grid (operator class Generic, not IsoAcoustic).
std::vector<AccessSummary> dsl_kernels(int space_order) {
  namespace dsl = tempest::dsl;
  auto lowered = [&](const char* damp_name, const char* kernel) {
    dsl::Grid g;
    dsl::TimeFunction u("u", g, space_order, 2);
    const dsl::Eq eq =
        dsl::solve(dsl::param("m") * u.dt2() +
                       dsl::param(damp_name) * u.dt() - u.laplace(),
                   u.forward());
    return dsl::lower_kernel(eq, space_order, /*spacing=*/10.0, /*dt=*/1.0,
                             kernel)
        .summary();
  };
  return {lowered("damp", "dsl-acoustic"), lowered("eta", "dsl-sponge")};
}

/// First error code of a report, or "-" when legal.
std::string first_error(const LegalityReport& r) {
  for (const auto& d : r.diagnostics) {
    if (d.severity == tempest::analysis::Diagnostic::Severity::Error) {
      return d.code;
    }
  }
  return "-";
}

}  // namespace

int main(int argc, char** argv) {
  bool csv = false;
  int space_order = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else if (std::strncmp(argv[i], "--so=", 5) == 0) {
      space_order = std::atoi(argv[i] + 5);
    } else {
      std::cerr << "usage: schedule_verifier [--csv] [--so=N]\n";
      return 2;
    }
  }
  if (space_order < 2 || space_order % 2 != 0) {
    std::cerr << "schedule_verifier: --so must be a positive even order\n";
    return 2;
  }

  std::vector<AccessSummary> kernels = {
      tempest::physics::acoustic_access_summary(space_order),
      tempest::physics::tti_access_summary(space_order),
      tempest::physics::vti_access_summary(space_order),
      tempest::physics::elastic_access_summary(space_order),
  };
  for (AccessSummary& k : dsl_kernels(space_order)) {
    kernels.push_back(std::move(k));
  }

  tempest::util::Table table(
      {"kernel", "stage", "schedule", "sparse", "verdict", "errors", "first"});
  int mismatches = 0;

  for (const AccessSummary& k : kernels) {
    for (const bool sparse : {false, true}) {
      for (int stage = 0; stage <= 2; ++stage) {
        for (const ScheduleDescriptor& sched : schedules(k.radius)) {
          const LegalityReport report = tempest::analysis::verify_canonical(
              k, stage, /*sources=*/sparse, /*receivers=*/sparse, sched);
          // Section II.A: only the naive nest's off-the-grid operators are
          // incompatible with temporal blocking; everything else is legal.
          const bool expect_legal =
              !(sched.time_tiled() && sparse && stage == 0);
          const bool ok = report.legal() == expect_legal;
          if (!ok) ++mismatches;
          table.add_row({k.kernel, std::to_string(stage), sched.str(),
                         sparse ? "on" : "off",
                         report.legal() ? "legal" : "ILLEGAL",
                         std::to_string(report.errors()),
                         ok ? first_error(report)
                            : first_error(report) + "  <-- UNEXPECTED"});
        }
      }
    }
  }

  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print_ascii(std::cout);
  }

  if (mismatches > 0) {
    std::cerr << "schedule_verifier: " << mismatches
              << " verdict(s) contradict the paper's legality theorem\n";
    return 1;
  }
  std::cout << "schedule_verifier: all " << table.rows()
            << " verdicts match the paper's legality theorem (stage-0 sparse "
               "rejected under temporal blocking; lowered nests accepted)\n";
  return 0;
}
