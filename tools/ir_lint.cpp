// ir_lint — the statics sweep CLI: runs the analysis::statics passes
// (interval abstract interpretation, von Neumann/CFL stability proof, IR
// lint, tile-interference race proof) over every kernel the repo ships —
// the four hand-written physics kernels by their declared access
// summaries, and the DSL-lowered kernels (dsl-acoustic and the
// Generic-class dsl-sponge) by their actual IR trees — under every
// schedule family.
//
// Exit code contract (how scripts/check.sh --analyze and the CI analyze
// job consume it):
//   * sweep mode: nonzero iff any statics pass reports an Error or any
//     schedule's interference proof finds a conflict — i.e. a false
//     positive of the verification layer on known-good kernels.
//   * --seeded mode: runs fixtures that are wrong *by construction*
//     (a dt beyond the stability bound, a load beyond the declared halo,
//     a wavefront band whose skew undershoots the stencil radius) and
//     returns nonzero iff any of them is NOT rejected — proving the gates
//     actually reject, with structured diagnostics naming the offending
//     bound / offset / tile pair.
//
// Usage: ir_lint [--csv] [--so=N[,N...]] [--seeded]

#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "tempest/analysis/statics/interference.hpp"
#include "tempest/analysis/statics/verify.hpp"
#include "tempest/dsl/expr.hpp"
#include "tempest/dsl/ir.hpp"
#include "tempest/dsl/lower.hpp"
#include "tempest/physics/acoustic.hpp"
#include "tempest/physics/elastic.hpp"
#include "tempest/physics/tti.hpp"
#include "tempest/physics/vti.hpp"
#include "tempest/util/table.hpp"

namespace {

namespace statics = tempest::analysis::statics;
namespace dsl = tempest::dsl;
using tempest::analysis::AccessSummary;
using tempest::analysis::Diagnostic;
using tempest::analysis::ScheduleDescriptor;

struct Entry {
  AccessSummary summary;
  std::optional<dsl::LoweredKernel> lowered;
};

std::vector<ScheduleDescriptor> schedules(int slope) {
  return {ScheduleDescriptor::reference(), ScheduleDescriptor::space_blocked(),
          ScheduleDescriptor::wavefront(slope), ScheduleDescriptor::fused(slope),
          ScheduleDescriptor::diamond(slope)};
}

dsl::LoweredKernel lower_dsl(const char* damp_name, const char* kernel,
                             int space_order, double dt) {
  dsl::Grid g;
  dsl::TimeFunction u("u", g, space_order, 2);
  const dsl::Eq eq = dsl::solve(dsl::param("m") * u.dt2() +
                                    dsl::param(damp_name) * u.dt() -
                                    u.laplace(),
                                u.forward());
  return dsl::lower_kernel(eq, space_order, /*spacing=*/10.0, dt, kernel);
}

std::vector<Entry> kernels_at(int so) {
  std::vector<Entry> out = {
      {tempest::physics::acoustic_access_summary(so), std::nullopt},
      {tempest::physics::tti_access_summary(so), std::nullopt},
      {tempest::physics::vti_access_summary(so), std::nullopt},
      {tempest::physics::elastic_access_summary(so), std::nullopt},
  };
  // dt = 0.5 ms at h = 10 m is stable at every swept order under the
  // conventional velocity interval: the sweep asserts *zero* errors.
  dsl::LoweredKernel ac = lower_dsl("damp", "dsl-acoustic", so, 0.5);
  dsl::LoweredKernel sp = lower_dsl("eta", "dsl-sponge", so, 0.5);
  out.push_back({ac.summary(), std::move(ac)});
  out.push_back({sp.summary(), std::move(sp)});
  return out;
}

int count_severity(const std::vector<Diagnostic>& ds,
                   Diagnostic::Severity sev) {
  int n = 0;
  for (const auto& d : ds) n += d.severity == sev ? 1 : 0;
  return n;
}

std::string first_error(const std::vector<Diagnostic>& ds) {
  for (const auto& d : ds) {
    if (d.severity == Diagnostic::Severity::Error) return d.code;
  }
  return "-";
}

/// Sweep mode: every kernel x every statics pass (x every schedule for the
/// interference proof). Returns the number of false positives.
int run_sweep(const std::vector<int>& orders, bool csv) {
  tempest::util::Table table({"kernel", "so", "pass", "subject", "verdict",
                              "errors", "notes", "first"});
  int false_positives = 0;

  auto add = [&](const std::string& kernel, int so, const char* pass,
                 const std::string& subject,
                 const std::vector<Diagnostic>& ds, bool ok) {
    if (!ok) ++false_positives;
    table.add_row({kernel, std::to_string(so), pass, subject,
                   ok ? "ok" : "REJECTED",
                   std::to_string(
                       count_severity(ds, Diagnostic::Severity::Error)),
                   std::to_string(
                       count_severity(ds, Diagnostic::Severity::Note)),
                   first_error(ds)});
  };

  for (const int so : orders) {
    for (const Entry& k : kernels_at(so)) {
      if (k.lowered) {
        statics::StaticsOptions opts;
        opts.bounds = statics::conventional_bounds(k.lowered->field);
        opts.resolvable = {"m", "damp", "vp", "eta"};
        opts.declared_radius = k.summary.radius;
        const statics::StaticsReport report =
            statics::verify_statics(*k.lowered, opts);
        add(k.summary.kernel, so, "intervals", "-",
            report.intervals.diagnostics, report.intervals.clean());
        add(k.summary.kernel, so, "stability", "-",
            report.stability.diagnostics, report.stability.stable());
        add(k.summary.kernel, so, "lint", "-", report.lint.diagnostics,
            report.lint.clean());
      }
      for (const ScheduleDescriptor& sched : schedules(k.summary.radius)) {
        const statics::InterferenceReport iref = statics::prove_race_free(
            statics::TileModel::from_summary(k.summary, sched,
                                             /*tile_x=*/64, /*tile_y=*/64,
                                             /*nx=*/192, /*ny=*/192,
                                             /*receivers=*/true));
        add(k.summary.kernel, so, "interference", sched.str(),
            iref.diagnostics, iref.race_free());
      }
    }
  }

  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print_ascii(std::cout);
  }
  if (false_positives > 0) {
    std::cerr << "ir_lint: " << false_positives
              << " false positive(s): the statics layer rejected a "
                 "known-good kernel/schedule\n";
    return 1;
  }
  std::cout << "ir_lint: " << table.rows()
            << " verdict(s), zero false positives\n";
  return 0;
}

/// Seeded mode: fixtures wrong by construction; each must be rejected with
/// a diagnostic carrying the expected code. Returns the number of
/// fixtures that slipped through.
int run_seeded() {
  int missed = 0;

  auto expect = [&](const char* fixture, const std::vector<Diagnostic>& ds,
                    const char* code) {
    bool found = false;
    for (const auto& d : ds) {
      if (d.severity == Diagnostic::Severity::Error && d.code == code) {
        found = true;
        std::cout << "seeded[" << fixture << "]: rejected as expected\n  "
                  << d.str() << "\n";
        break;
      }
    }
    if (!found) {
      ++missed;
      std::cerr << "seeded[" << fixture << "]: NOT rejected (expected error '"
                << code << "')\n";
      for (const auto& d : ds) std::cerr << "  " << d.str() << "\n";
    }
  };

  // 1. A dt far beyond the von Neumann bound (~1.1 ms at so=4, h=10,
  //    vp_max=4.5): the stability pass must name the bound it violates.
  {
    const dsl::LoweredKernel lk =
        lower_dsl("damp", "seeded-unstable", 4, /*dt=*/3.0);
    statics::StaticsOptions opts;
    opts.bounds = statics::conventional_bounds(lk.field);
    opts.resolvable = {"m", "damp", "vp"};
    expect("unstable-dt", statics::verify_statics(lk, opts).diagnostics(),
           "unstable-dt");
  }

  // 2. A lowered tree corrupted with a load beyond the declared halo (and
  //    beyond its own declared access hulls): the lint must name the
  //    offending offset on both counts.
  {
    dsl::LoweredKernel lk = lower_dsl("damp", "seeded-out-of-halo", 4, 0.5);
    lk.update = dsl::ir::bin(
        '+', lk.update,
        dsl::ir::load(lk.field, 0, lk.radius() + 3, 0, 0));
    statics::LintOptions lopts;
    lopts.declared_radius = lk.radius();
    const statics::LintReport lint = statics::lint_kernel(lk, lopts);
    expect("out-of-halo-read", lint.diagnostics, "out-of-halo-read");
    expect("footprint-mismatch", lint.diagnostics, "footprint-mismatch");
  }

  // 3. A wavefront band whose skew slope (1) undershoots the stencil
  //    radius (2): adjacent staircase-unordered tiles overlap, and the
  //    prover must name the interfering tile pair.
  {
    statics::TileModel tm;
    tm.schedule = ScheduleDescriptor::wavefront(/*slope=*/1, /*tile_t=*/8);
    tm.radius = 2;
    const statics::InterferenceReport iref = statics::prove_race_free(tm);
    expect("tile-interference", iref.diagnostics, "tile-interference");
  }

  if (missed > 0) {
    std::cerr << "ir_lint --seeded: " << missed
              << " seeded fixture(s) were NOT rejected\n";
    return 1;
  }
  std::cout << "ir_lint --seeded: every seeded fixture rejected with the "
               "expected diagnostic\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool csv = false;
  bool seeded = false;
  std::vector<int> orders;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else if (std::strcmp(argv[i], "--seeded") == 0) {
      seeded = true;
    } else if (std::strncmp(argv[i], "--so=", 5) == 0) {
      for (const char* p = argv[i] + 5; *p != '\0';) {
        orders.push_back(std::atoi(p));
        while (*p != '\0' && *p != ',') ++p;
        if (*p == ',') ++p;
      }
    } else {
      std::cerr << "usage: ir_lint [--csv] [--so=N[,N...]] [--seeded]\n";
      return 2;
    }
  }
  if (orders.empty()) orders = {4, 8};
  for (const int so : orders) {
    if (so < 2 || so % 2 != 0) {
      std::cerr << "ir_lint: --so must be positive even orders\n";
      return 2;
    }
  }
  return seeded ? run_seeded() : run_sweep(orders, csv);
}
