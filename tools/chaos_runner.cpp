// Chaos harness for the crash-tolerant survey runtime: proves that a
// survey SIGKILLed at arbitrary mid-computation points, restarted each
// time, produces final gathers *bit-identical* to an uninterrupted run.
// The protocol (reference pass -> seeded kills + optional checkpoint
// corruption -> final restart -> byte-compare) lives in
// tempest::jobs::run_chaos, shared with the jobs_chaos ctest; this binary
// is the CLI host that scripts/check.sh --chaos and the CI chaos job drive.
//
// The worker is this same binary re-exec'd with --worker (fork/exec, a
// real process death — no in-process simulation).
//
// Usage: chaos_runner [--size=24] [--steps=40] [--shots=3] [--so=4]
//                     [--physics=acoustic] [--schedule=wavefront]
//                     [--ckpt-every=8] [--kills=5] [--seed=7] [--corrupt]
//                     [--dir=chaos_jobs] [--self=/path/to/this/binary]
// Exit: 0 on bit-identical recovery, 1 on any mismatch or protocol error.

#include <iostream>
#include <string>

#include "tempest/jobs/chaos.hpp"
#include "tempest/util/cli.hpp"

int main(int argc, char** argv) {
  using namespace tempest;
  const util::Cli cli(argc, argv);
  if (cli.get_flag("worker")) return jobs::run_chaos_worker(cli);

  jobs::ChaosSpec spec;
  spec.worker_args = {
      "--size=" + std::to_string(cli.get_int("size", 24)),
      "--steps=" + std::to_string(cli.get_int("steps", 40)),
      "--shots=" + std::to_string(cli.get_int("shots", 3)),
      "--so=" + std::to_string(cli.get_int("so", 4)),
      "--physics=" + cli.get("physics", "acoustic"),
      "--schedule=" + cli.get("schedule", "wavefront"),
      "--ckpt-every=" + std::to_string(cli.get_int("ckpt-every", 8)),
  };
  spec.root = cli.get("dir", "chaos_jobs");
  spec.shots = static_cast<int>(cli.get_int("shots", 3));
  spec.kills = static_cast<int>(cli.get_int("kills", 5));
  spec.seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  spec.corrupt = cli.get_flag("corrupt");

  // argv[0] as invoked: the orchestrator re-execs itself as the worker.
  const std::string err = jobs::run_chaos(spec, cli.get("self", argv[0]));
  if (!err.empty()) {
    std::cerr << err << "\n";
    return 1;
  }
  return 0;
}
