#!/usr/bin/env python3
"""Validate BENCH_*.json and OpenMetrics files emitted by the harnesses.

Stdlib-only schema check for three document families — JSON files are
dispatched on the top-level "schema" field, *.om files are parsed as
OpenMetrics text expositions:

  * "tempest-bench-v1" — written by bench::Session (bench/session.hpp).
    PMU-less runs are *valid* as long as they say so (pmu.available/
    hardware flags + a captured reason) and still carry timings and
    modelled numbers.
  * "tempest-survey-v1" / "tempest-survey-v2" — written by the
    crash-tolerant survey runtime (jobs::write_survey_json): per-shot
    outcomes, retry/degradation counts, and throughput/latency
    aggregates, checked for internal consistency (counts add up,
    aggregates match the rows). v2 additionally carries the obs latency
    histograms, checked for bucket monotonicity and count consistency.
  * OpenMetrics textfiles (obs::write_openmetrics, --openmetrics=...):
    metric-name lint, strictly increasing le-bucket bounds, cumulative
    non-decreasing counts, +Inf bucket == _count, terminal `# EOF`.

Used by scripts/check.sh --bench / --chaos and the CI perf-smoke and
chaos jobs.

Usage: bench_check.py FILE [FILE...]
Exit 0 when every file validates; 1 with per-file diagnostics otherwise.
"""

import json
import re
import sys

SCHEMA = "tempest-bench-v1"
VERDICTS = {"pass", "warn", "fail", "unavailable"}


def fail(errors, msg):
    errors.append(msg)


def check_number(errors, obj, key, where, minimum=None):
    v = obj.get(key)
    if not isinstance(v, (int, float)) or isinstance(v, bool):
        fail(errors, f"{where}.{key}: expected a number, got {v!r}")
        return None
    if minimum is not None and v < minimum:
        fail(errors, f"{where}.{key}: {v} < {minimum}")
    return v


def check_case(errors, case, i):
    where = f"cases[{i}]"
    if not isinstance(case.get("name"), str) or not case["name"]:
        fail(errors, f"{where}: missing name")
        where = f"cases[{i}]"
    else:
        where = f"cases[{case['name']!r}]"
    reps = case.get("reps_s")
    if not isinstance(reps, list) or not reps:
        fail(errors, f"{where}.reps_s: expected a non-empty list")
        reps = []
    for r in reps:
        if not isinstance(r, (int, float)) or r < 0:
            fail(errors, f"{where}.reps_s: bad entry {r!r}")
    min_s = check_number(errors, case, "min_s", where, minimum=0.0)
    median_s = check_number(errors, case, "median_s", where, minimum=0.0)
    if reps and min_s is not None and abs(min_s - min(reps)) > 1e-12:
        fail(errors, f"{where}: min_s {min_s} != min(reps_s) {min(reps)}")
    if (min_s is not None and median_s is not None
            and median_s + 1e-12 < min_s):
        fail(errors, f"{where}: median_s {median_s} < min_s {min_s}")
    check_number(errors, case, "point_updates", where, minimum=0)
    if not isinstance(case.get("counters"), dict):
        fail(errors, f"{where}.counters: expected an object")
    check_pmu_sample(errors, case.get("pmu"), f"{where}.pmu")
    if not isinstance(case.get("derived"), dict):
        fail(errors, f"{where}.derived: expected an object")


def check_pmu_sample(errors, sample, where):
    if not isinstance(sample, dict):
        fail(errors, f"{where}: expected an object")
        return
    mask = sample.get("valid_mask")
    if not isinstance(mask, int) or mask < 0:
        fail(errors, f"{where}.valid_mask: expected a non-negative int")
        return
    values = sample.get("values")
    if not isinstance(values, dict):
        fail(errors, f"{where}.values: expected an object")
        return
    n_valid = bin(mask).count("1")
    if len(values) != n_valid:
        fail(errors, f"{where}: valid_mask has {n_valid} bits set "
                     f"but values has {len(values)} entries")
    for name, v in values.items():
        if not isinstance(v, int) or v < 0:
            fail(errors, f"{where}.values.{name}: expected a "
                         f"non-negative count, got {v!r}")


def check_validation(errors, v, i):
    where = f"validation[{i}]"
    if not isinstance(v.get("name"), str):
        fail(errors, f"{where}: missing name")
    verdict = v.get("verdict")
    if verdict not in VERDICTS:
        fail(errors, f"{where}.verdict: {verdict!r} not in {VERDICTS}")
    check_number(errors, v, "predicted_bytes", where, minimum=0.0)
    check_number(errors, v, "measured_bytes", where, minimum=0.0)
    # A real verdict must rest on a real measurement.
    if verdict in ("pass", "warn") and v.get("measured_bytes", 0) <= 0:
        fail(errors, f"{where}: verdict {verdict} with no measured bytes")


SURVEY_SCHEMAS = ("tempest-survey-v1", "tempest-survey-v2")
SHOT_STATES = {"done", "quarantined", "pending", "running"}


def check_latency_histograms(errors, doc):
    """Validate the v2 "latency_histograms" object: every metric carries a
    cumulative le-bucket list (strictly increasing bounds, non-decreasing
    counts, final cumulative == count), and the shot_seconds sample count
    is consistent with the number of completed shots."""
    hists = doc.get("latency_histograms")
    if not isinstance(hists, dict) or not hists:
        fail(errors, "latency_histograms: expected a non-empty object (v2)")
        return
    for name, h in hists.items():
        where = f"latency_histograms.{name}"
        if not isinstance(h, dict):
            fail(errors, f"{where}: expected an object")
            continue
        count = check_number(errors, h, "count", where, minimum=0)
        check_number(errors, h, "sum_seconds", where, minimum=0.0)
        check_number(errors, h, "min_seconds", where, minimum=0.0)
        check_number(errors, h, "max_seconds", where, minimum=0.0)
        buckets = h.get("buckets")
        if not isinstance(buckets, list):
            fail(errors, f"{where}.buckets: expected a list")
            continue
        last_le, last_cum = -1.0, 0
        for i, b in enumerate(buckets):
            le = check_number(errors, b, "le", f"{where}.buckets[{i}]",
                              minimum=0.0)
            cum = check_number(errors, b, "count", f"{where}.buckets[{i}]",
                               minimum=0)
            if le is not None:
                if le <= last_le:
                    fail(errors, f"{where}.buckets[{i}]: le {le} not "
                                 f"strictly increasing (prev {last_le})")
                last_le = le
            if cum is not None:
                if cum < last_cum:
                    fail(errors, f"{where}.buckets[{i}]: cumulative count "
                                 f"{cum} decreased (prev {last_cum})")
                last_cum = cum
        if isinstance(count, int) and buckets and last_cum != count:
            fail(errors, f"{where}: final cumulative {last_cum} != "
                         f"count {count}")
        if isinstance(count, int) and count > 0 and not buckets:
            fail(errors, f"{where}: count {count} but no buckets")
    shot = hists.get("shot_seconds")
    done = doc.get("done")
    if isinstance(shot, dict) and isinstance(done, int):
        n = shot.get("count")
        if isinstance(n, int):
            # Every completed shot records exactly one ShotSeconds sample;
            # a resumed run skips already-done shots, so only a fresh run
            # pins equality.
            if doc.get("recovered") is False and n != done:
                fail(errors, f"latency_histograms.shot_seconds.count {n} "
                             f"!= done {done} on a fresh run")
            if n > done:
                fail(errors, f"latency_histograms.shot_seconds.count {n} "
                             f"> done {done}")


def check_survey_file(doc):
    """Validate a tempest-survey-v1/v2 document for internal consistency."""
    errors = []
    if doc.get("schema") == "tempest-survey-v2":
        check_latency_histograms(errors, doc)
    elif "latency_histograms" in doc:
        fail(errors, "latency_histograms present in a v1 document")
    for key in ("physics", "requested_schedule"):
        if not isinstance(doc.get(key), str) or not doc[key]:
            fail(errors, f"{key}: missing")
    for key in ("size", "steps", "shots"):
        check_number(errors, doc, key, "survey", minimum=1)
    if not isinstance(doc.get("recovered"), bool):
        fail(errors, "recovered: expected a bool")
    total = check_number(errors, doc, "total_seconds", "survey", minimum=0.0)
    done = check_number(errors, doc, "done", "survey", minimum=0)
    degraded = check_number(errors, doc, "degraded", "survey", minimum=0)
    quarantined = check_number(errors, doc, "quarantined", "survey",
                               minimum=0)
    sph = check_number(errors, doc, "shots_per_hour", "survey", minimum=0.0)
    p50 = check_number(errors, doc, "p50_shot_seconds", "survey",
                       minimum=0.0)
    p99 = check_number(errors, doc, "p99_shot_seconds", "survey",
                       minimum=0.0)
    if p50 is not None and p99 is not None and p50 > p99 + 1e-12:
        fail(errors, f"p50_shot_seconds {p50} > p99_shot_seconds {p99}")

    rows = doc.get("shot_reports")
    if not isinstance(rows, list):
        fail(errors, "shot_reports: expected a list")
        rows = []
    shots = doc.get("shots")
    if isinstance(shots, int) and len(rows) != shots:
        fail(errors, f"shot_reports: {len(rows)} rows for {shots} shots")

    counted = {"done": 0, "quarantined": 0, "degraded": 0}
    for i, row in enumerate(rows):
        where = f"shot_reports[{i}]"
        if row.get("shot") != i:
            fail(errors, f"{where}.shot: expected {i}, got {row.get('shot')}")
        state = row.get("state")
        if state not in SHOT_STATES:
            fail(errors, f"{where}.state: {state!r} not in {SHOT_STATES}")
        check_number(errors, row, "level", where, minimum=0)
        check_number(errors, row, "seconds", where, minimum=0.0)
        if not isinstance(row.get("level_name"), str):
            fail(errors, f"{where}.level_name: missing")
        if not isinstance(row.get("degraded"), bool):
            fail(errors, f"{where}.degraded: expected a bool")
        attempts = check_number(errors, row, "attempts", where, minimum=0)
        # A finished shot must have been attempted at least once.
        if state in ("done", "quarantined") and (attempts or 0) < 1:
            fail(errors, f"{where}: state {state} with no attempts")
        if state in ("done", "quarantined"):
            counted[state] += 1
        if state == "done" and row.get("degraded") is True:
            counted["degraded"] += 1

    # The aggregates must match the rows they summarize.
    for key in ("done", "quarantined", "degraded"):
        if isinstance(doc.get(key), int) and doc[key] != counted[key]:
            fail(errors, f"{key}: header says {doc[key]}, "
                         f"rows add up to {counted[key]}")
    if (done and total and sph is not None
            and abs(sph - done * 3600.0 / total) > 1e-6 * max(1.0, sph)):
        fail(errors, f"shots_per_hour {sph} != done*3600/total_seconds "
                     f"{done * 3600.0 / total}")
    return errors


def check_fig9_parallel(errors, doc):
    """fig9_speedup documents carry the task-parallel provenance fields.

    Every case must be tagged with the worker count and tile shape it ran
    under, and a multi-threaded document must report a parallel task
    backend consistent with the environment: a run claiming threads > 1
    while the binary reports a serial backend — or an "openmp" backend
    without the OpenMP runtime linked (env.omp_runtime false, the
    fingerprint's omp=1) — is a serial number masquerading as a parallel
    one and must not enter the perf record.
    """
    config = doc.get("config") if isinstance(doc.get("config"), dict) else {}
    env = doc.get("env") if isinstance(doc.get("env"), dict) else {}
    threads_s = config.get("threads")
    if not isinstance(threads_s, str) or not threads_s.isdigit():
        fail(errors, f"config.threads: expected a numeric string, "
                     f"got {threads_s!r}")
        return
    threads = int(threads_s)
    if threads < 1:
        fail(errors, f"config.threads: {threads} < 1")
    backend = config.get("task_backend")
    if backend not in ("serial", "openmp", "pool"):
        fail(errors, f"config.task_backend: {backend!r} not a known backend")

    for i, case in enumerate(doc.get("cases") or []):
        tags = case.get("tags") if isinstance(case.get("tags"), dict) else {}
        where = f"cases[{i}]"
        if tags.get("threads") != threads_s:
            fail(errors, f"{where}.tags.threads: {tags.get('threads')!r} "
                         f"!= config.threads {threads_s!r}")
        shape = tags.get("tile_shape")
        if (not isinstance(shape, str)
                or len(shape.split("x")) != 3
                or not all(p.isdigit() and int(p) > 0
                           for p in shape.split("x"))):
            fail(errors, f"{where}.tags.tile_shape: expected 'TxXxY' with "
                         f"positive ints, got {shape!r}")

    if threads > 1:
        if backend == "serial":
            fail(errors, f"config: threads={threads} but task_backend is "
                         f"'serial' — multi-thread run without a parallel "
                         f"substrate")
        if backend == "openmp" and env.get("omp_runtime") is False:
            fail(errors, f"config: threads={threads} on the 'openmp' "
                         f"backend but env.omp_runtime is false (omp=1 in "
                         f"the fingerprint) — the runtime is not linked")


METRIC_NAME_RE = re.compile(r"^[a-z_][a-z0-9_]*$")


def check_openmetrics_file(path):
    """Lint an OpenMetrics text exposition (obs::write_openmetrics)."""
    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        return [f"unreadable: {e}"]
    if not lines or lines[-1] != "# EOF":
        fail(errors, "missing terminal '# EOF' line")

    # Histogram state, keyed by metric base name.
    buckets = {}   # name -> [(le_string, cumulative)]
    counts = {}    # name -> _count value
    for ln, line in enumerate(lines, start=1):
        if not line or line.startswith("#"):
            if line.startswith("# TYPE ") or line.startswith("# UNIT "):
                parts = line.split()
                if len(parts) < 4 or not METRIC_NAME_RE.match(parts[2]):
                    fail(errors, f"line {ln}: bad metric name in {line!r}")
            continue
        # Sample line: name[{labels}] value
        head, _, value = line.rpartition(" ")
        name = head.split("{", 1)[0]
        if not METRIC_NAME_RE.match(name):
            fail(errors, f"line {ln}: metric name {name!r} fails the lint")
            continue
        try:
            float(value)
        except ValueError:
            fail(errors, f"line {ln}: non-numeric sample value {value!r}")
            continue
        if name.endswith("_bucket") and 'le="' in head:
            le = head.split('le="', 1)[1].split('"', 1)[0]
            buckets.setdefault(name[:-len("_bucket")], []).append(
                (le, float(value)))
        elif name.endswith("_count"):
            counts[name[:-len("_count")]] = float(value)

    for metric, series in buckets.items():
        last_le, last_cum = -1.0, -1.0
        inf_cum = None
        for le, cum in series:
            if cum < last_cum:
                fail(errors, f"{metric}: cumulative bucket count {cum} "
                             f"decreased (prev {last_cum})")
            last_cum = cum
            if le == "+Inf":
                inf_cum = cum
            else:
                try:
                    le_v = float(le)
                except ValueError:
                    fail(errors, f"{metric}: unparseable le {le!r}")
                    continue
                if le_v <= last_le:
                    fail(errors, f"{metric}: le {le_v} not strictly "
                                 f"increasing (prev {last_le})")
                last_le = le_v
        if inf_cum is None:
            fail(errors, f"{metric}: no +Inf bucket")
        elif metric in counts and inf_cum != counts[metric]:
            fail(errors, f"{metric}: +Inf bucket {inf_cum} != "
                         f"_count {counts[metric]}")
        if metric not in counts:
            fail(errors, f"{metric}: buckets without a _count series")
    return errors


def check_file(path):
    errors = []
    if path.endswith(".om"):
        return check_openmetrics_file(path)
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"unreadable: {e}"]

    if doc.get("schema") in SURVEY_SCHEMAS:
        return check_survey_file(doc)

    if doc.get("schema") != SCHEMA:
        fail(errors, f"schema: expected {SCHEMA!r}, got {doc.get('schema')!r}")
    if not isinstance(doc.get("name"), str) or not doc["name"]:
        fail(errors, "name: missing")
    if not isinstance(doc.get("timestamp"), str):
        fail(errors, "timestamp: missing")

    env = doc.get("env")
    if not isinstance(env, dict) or not isinstance(
            env.get("fingerprint"), str):
        fail(errors, "env.fingerprint: missing")

    pmu = doc.get("pmu")
    if not isinstance(pmu, dict):
        fail(errors, "pmu: expected an object")
    else:
        for key in ("available", "hardware"):
            if not isinstance(pmu.get(key), bool):
                fail(errors, f"pmu.{key}: expected a bool")
        if not isinstance(pmu.get("reason"), str):
            fail(errors, "pmu.reason: expected a string")
        # Degraded runs must be *observable*: no hardware => a reason.
        if pmu.get("hardware") is False and not pmu.get("reason"):
            fail(errors, "pmu: hardware unavailable but no reason captured")
        check_pmu_sample(errors, pmu.get("process_delta"),
                         "pmu.process_delta")

    if not isinstance(doc.get("config"), dict):
        fail(errors, "config: expected an object")

    cases = doc.get("cases")
    if not isinstance(cases, list):
        fail(errors, "cases: expected a list")
        cases = []
    for i, case in enumerate(cases):
        check_case(errors, case, i)

    validations = doc.get("validation")
    if not isinstance(validations, list):
        fail(errors, "validation: expected a list")
        validations = []
    for i, v in enumerate(validations):
        check_validation(errors, v, i)
    # Without a hardware PMU every traffic verdict must be unavailable —
    # a pass/fail claimed off zeroed samples would be silent garbage.
    if isinstance(pmu, dict) and pmu.get("hardware") is False:
        for i, v in enumerate(validations):
            if v.get("verdict") not in ("unavailable",):
                fail(errors, f"validation[{i}]: verdict {v.get('verdict')!r}"
                             " without a hardware PMU")

    runs = doc.get("benchmark_runs", [])
    if not isinstance(runs, list):
        fail(errors, "benchmark_runs: expected a list")
        runs = []
    for i, run in enumerate(runs):
        where = f"benchmark_runs[{i}]"
        if not isinstance(run.get("name"), str):
            fail(errors, f"{where}.name: missing")
        check_number(errors, run, "real_s", where, minimum=0.0)
        check_number(errors, run, "iterations", where, minimum=1)

    if "roofline" in doc:
        roof = doc["roofline"]
        ceilings = roof.get("ceilings") if isinstance(roof, dict) else None
        if not isinstance(ceilings, dict):
            fail(errors, "roofline.ceilings: expected an object")
        else:
            for key in ("peak_gflops", "l1_gbps", "l2_gbps", "l3_gbps",
                        "dram_gbps"):
                check_number(errors, ceilings, key, "roofline.ceilings",
                             minimum=1e-9)
        points = roof.get("points") if isinstance(roof, dict) else None
        if not isinstance(points, list):
            fail(errors, "roofline.points: expected a list")
        else:
            for i, p in enumerate(points):
                check_number(errors, p, "ai", f"roofline.points[{i}]",
                             minimum=0.0)
                check_number(errors, p, "gflops", f"roofline.points[{i}]",
                             minimum=0.0)

    if not cases and not runs:
        fail(errors, "document has neither cases nor benchmark_runs")

    if doc.get("name") == "fig9_speedup":
        check_fig9_parallel(errors, doc)
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    bad = 0
    for path in argv[1:]:
        errors = check_file(path)
        if errors:
            bad += 1
            print(f"FAIL {path}")
            for e in errors:
                print(f"  - {e}")
        elif path.endswith(".om"):
            print(f"OK   {path} (OpenMetrics)")
        else:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
            if doc.get("schema") in SURVEY_SCHEMAS:
                print(f"OK   {path} ({doc.get('shots')} shots, "
                      f"{doc.get('done')} done, "
                      f"{doc.get('degraded')} degraded, "
                      f"{doc.get('quarantined')} quarantined)")
            else:
                hw = doc.get("pmu", {}).get("hardware")
                n = len(doc.get("cases", [])) + len(doc.get(
                    "benchmark_runs", []))
                print(f"OK   {path} ({n} entries, hardware PMU: {hw})")
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
