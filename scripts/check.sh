#!/usr/bin/env sh
# Tier-1 verification: build + full test suite under the default (Release)
# preset, then again under the asan preset (-fsanitize=address,undefined).
# Usage:  scripts/check.sh [--fast | --skip-asan | --bench | --tidy |
#                           --ubsan | --tsan | --analyze | --chaos]
#   --fast       build the default preset and run only the `unit`-labelled
#                tests (the PR fast lane); implies no asan pass
#   --skip-asan  full default-preset suite, skip the sanitizer pass
#   --bench      build the default preset, run the bench harnesses at
#                smoke-test sizes with --json, and schema-check the
#                emitted BENCH_*.json (works on PMU-less machines)
#   --chaos      build the asan preset and run the kill/corrupt/resume
#                chaos harness (tools/chaos_runner) with a fixed seed:
#                five SIGKILLs of a 3-shot survey, one checkpoint
#                bit-flip, final gathers must be bit-identical to an
#                uninterrupted run (every fired kill must also leave a
#                CRC-clean flight-recorder black box behind); then
#                SIGKILL a live survey directly and decode its .tfbr
#                with tools/blackbox_dump, resume it, and check the
#                box is recycled; finally run a journaled survey and
#                schema-check its BENCH_survey.json + OpenMetrics file
#   --tidy       run clang-tidy (bugprone + performance, see .clang-tidy)
#                over every library layer — engine, physics, analysis
#                (including the statics passes), dsl, codegen, jobs, obs,
#                util — plus the CLI tools; findings are errors (blocking
#                CI gate) — returns non-zero on any hit
#   --ubsan      full suite under the standalone UBSan preset
#                (-fsanitize=undefined,float-cast-overflow, no recovery)
#   --tsan       the `parallel`-labelled tests under the ThreadSanitizer
#                preset: no OpenMP runtime (libgomp is opaque to TSan),
#                task graphs run on the std::thread pool backend with the
#                same dependence edges, oversubscribed via
#                TEMPEST_THREADS=8 so races surface on any host
#   --analyze    build the schedule-legality verifier and the statics
#                sweep (tools/ir_lint) and run both as blocking gates:
#                every physics kernel — hand-written and DSL-lowered — x
#                schedule x sparse on/off x lowering stage through the
#                legality verifier, then the statics passes (interval
#                abstract interpretation, von Neumann/CFL proof, IR lint,
#                tile-interference race proof) over the same kernels and
#                schedules; both at space orders 4 and 8 so the DSL
#                lowering's structural summaries are exercised at more
#                than one radius. Non-zero when any verdict contradicts
#                the paper's legality theorem, when the statics layer
#                reports a false positive on a known-good kernel, or when
#                any of ir_lint's seeded-wrong fixtures (unstable dt,
#                out-of-halo load, undershot wavefront skew) is NOT
#                rejected
set -eu

cd "$(dirname "$0")/.."

run_bench_smoke() {
  echo "==> configure (default)"
  cmake --preset default
  echo "==> build (default)"
  cmake --build --preset default -j "$(nproc)"
  echo "==> bench smoke (tiny sizes, --json)"
  out=build/bench_smoke
  mkdir -p "${out}"
  ( cd "${out}" &&
    ../bench/fig11_roofline --size=48 --steps=4 --so=4 --sim-size=24 \
      --sim-steps=2 --reps=2 --json=BENCH_fig11_roofline.json >/dev/null &&
    ../bench/fig9_speedup --size=40 --steps=3 --so=4 --kernels=acoustic \
      --reps=2 --json=BENCH_fig9_speedup.json >/dev/null &&
    TEMPEST_MICRO_SIZE=32 TEMPEST_MICRO_STEPS=2 \
      ../bench/micro_stencil --json=BENCH_micro_stencil.json >/dev/null &&
    TEMPEST_MICRO_SIZE=48 TEMPEST_MICRO_STEPS=4 \
      ../bench/micro_injection --json=BENCH_micro_injection.json \
      >/dev/null &&
    TEMPEST_MICRO_SIZE=48 TEMPEST_MICRO_STEPS=4 \
      ../bench/micro_precompute --json=BENCH_micro_precompute.json \
      >/dev/null &&
    TEMPEST_MICRO_SIZE=48 TEMPEST_MICRO_STEPS=2 \
      ../bench/micro_wavefront --json=BENCH_micro_wavefront.json \
      >/dev/null )
  if command -v python3 >/dev/null 2>&1; then
    echo "==> validate BENCH_*.json"
    python3 scripts/bench_check.py "${out}"/BENCH_*.json
  else
    echo "==> python3 not found; skipping JSON schema validation"
  fi
  echo "==> bench smoke passed"
}

run_chaos() {
  echo "==> configure (asan)"
  cmake --preset asan
  echo "==> build chaos_runner + seismic_survey + blackbox_dump (asan)"
  cmake --build --preset asan -j "$(nproc)" --target chaos_runner \
    --target seismic_survey --target blackbox_dump
  # detect_leaks=0: the worker dies by SIGKILL mid-run by design; leak
  # reports from killed children are the experiment, not a defect.
  asan_env="${ASAN_OPTIONS:-detect_leaks=0}"
  echo "==> chaos: 5 seeded kills + checkpoint corruption (space-blocked)"
  ASAN_OPTIONS="${asan_env}" build-asan/tools/chaos_runner \
    --size=20 --steps=36 --shots=3 --so=4 --schedule=space-blocked \
    --ckpt-every=6 --kills=5 --seed=7 --corrupt --dir=build-asan/chaos_sb
  echo "==> chaos: 5 seeded kills (wavefront, temporally blocked)"
  ASAN_OPTIONS="${asan_env}" build-asan/tools/chaos_runner \
    --size=20 --steps=36 --shots=3 --so=4 --schedule=wavefront \
    --kills=5 --seed=7 --dir=build-asan/chaos_wf
  echo "==> black box: SIGKILL a live survey, decode its flight recorder"
  rm -rf build-asan/chaos_bb
  # TEMPEST_CHAOS_KILL_AT arms resilience::fault::kill_after_progress inside
  # the survey itself: the process raises SIGKILL at the third progress tick,
  # so no flush or destructor runs — only the mmap'd recorder survives.
  TEMPEST_CHAOS_KILL_AT=3 ASAN_OPTIONS="${asan_env}" \
    build-asan/examples/seismic_survey \
    --size=20 --steps=30 --shots=2 --so=4 --jobs-dir=build-asan/chaos_bb \
    >/dev/null 2>&1 || true
  set -- build-asan/chaos_bb/blackbox/shot_*.tfbr
  if [ ! -e "$1" ]; then
    echo "chaos: SIGKILL'd survey left no black box in chaos_bb/blackbox" >&2
    exit 1
  fi
  ASAN_OPTIONS="${asan_env}" build-asan/tools/blackbox_dump --verify "$@"
  ASAN_OPTIONS="${asan_env}" build-asan/tools/blackbox_dump --tail=5 "$1"
  echo "==> black box: resume the killed survey; box must be recycled"
  ASAN_OPTIONS="${asan_env}" build-asan/examples/seismic_survey \
    --size=20 --steps=30 --shots=2 --so=4 --jobs-dir=build-asan/chaos_bb \
    >/dev/null
  if ls build-asan/chaos_bb/blackbox/shot_*.tfbr >/dev/null 2>&1; then
    echo "chaos: live black boxes remain after a successful resume" >&2
    exit 1
  fi
  echo "==> survey smoke + BENCH_survey.json / survey.om schema check"
  rm -rf build-asan/chaos_survey
  ASAN_OPTIONS="${asan_env}" build-asan/examples/seismic_survey \
    --size=20 --steps=30 --shots=3 --so=4 --jobs-dir=build-asan/chaos_survey \
    --survey-json=build-asan/chaos_survey/BENCH_survey.json \
    --openmetrics=build-asan/chaos_survey/survey.om >/dev/null
  if command -v python3 >/dev/null 2>&1; then
    python3 scripts/bench_check.py build-asan/chaos_survey/BENCH_survey.json \
      build-asan/chaos_survey/survey.om
  else
    echo "==> python3 not found; skipping JSON schema validation"
  fi
  echo "==> chaos checks passed"
}

run_preset() {
  preset="$1"
  shift
  echo "==> configure (${preset})"
  cmake --preset "${preset}"
  echo "==> build (${preset})"
  cmake --build --preset "${preset}" -j "$(nproc)"
  echo "==> test (${preset})"
  ctest --preset "${preset}" -j "$(nproc)" "$@"
}

run_tidy() {
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "==> clang-tidy not installed; cannot run the blocking tidy gate" >&2
    exit 1
  fi
  echo "==> configure (default, compile-commands export)"
  cmake --preset default -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  echo "==> clang-tidy (engine, physics, analysis+statics, dsl, codegen," \
       "jobs, obs, util, tools)"
  # Every library layer plus the CLI tools: the schedule-execution engine,
  # the kernels it drives, the legality verifier and the statics passes
  # that gate them, the typed-IR frontend + emitter, the survey jobs
  # runtime, the observability stack and the shared utilities; .clang-tidy
  # scopes the checks, promotes every warning to an error (blocking), and
  # pulls the matching headers in via HeaderFilterRegex.
  clang-tidy -p build \
    src/tempest/core/*.cpp src/tempest/physics/*.cpp \
    src/tempest/analysis/*.cpp src/tempest/analysis/statics/*.cpp \
    src/tempest/dsl/*.cpp src/tempest/codegen/*.cpp \
    src/tempest/jobs/*.cpp src/tempest/obs/*.cpp src/tempest/util/*.cpp \
    tools/*.cpp
  echo "==> tidy passed"
}

run_analyze() {
  echo "==> configure (default)"
  cmake --preset default >/dev/null
  echo "==> build schedule_verifier + ir_lint"
  cmake --build --preset default -j "$(nproc)" --target schedule_verifier \
    --target ir_lint
  echo "==> schedule-legality sweep (kernels x schedules x sparse x stages," \
       "space orders 4 and 8)"
  build/tools/schedule_verifier --so=4,8
  echo "==> statics sweep (intervals + CFL + lint + interference," \
       "space orders 4 and 8)"
  build/tools/ir_lint --so=4,8
  echo "==> statics seeded fixtures (must each be rejected)"
  build/tools/ir_lint --seeded
}

if [ "${1:-}" = "--bench" ]; then
  run_bench_smoke
  exit 0
fi

if [ "${1:-}" = "--tidy" ]; then
  run_tidy
  exit 0
fi

if [ "${1:-}" = "--analyze" ]; then
  run_analyze
  exit 0
fi

if [ "${1:-}" = "--chaos" ]; then
  run_chaos
  exit 0
fi

if [ "${1:-}" = "--ubsan" ]; then
  run_preset ubsan
  echo "==> ubsan suite passed"
  exit 0
fi

if [ "${1:-}" = "--tsan" ]; then
  # halt_on_error: a single report must fail the run, not scroll past.
  # TEMPEST_THREADS=8 oversubscribes the pool so cross-thread interleavings
  # exist even on single-core runners.
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" TEMPEST_THREADS=8 \
    run_preset tsan -L parallel
  echo "==> tsan parallel-schedule checks passed"
  exit 0
fi

if [ "${1:-}" = "--fast" ]; then
  run_preset default -L unit
  echo "==> fast checks passed"
  exit 0
fi

run_preset default

if [ "${1:-}" != "--skip-asan" ]; then
  # The JIT compiles plain C helper objects that are dlopen()ed into the
  # sanitized process; suppress the expected ODR/leak noise from the
  # toolchain itself, not from tempest.
  ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}" run_preset asan
fi

echo "==> all checks passed"
