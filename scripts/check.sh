#!/usr/bin/env sh
# Tier-1 verification: build + full test suite under the default (Release)
# preset, then again under the asan preset (-fsanitize=address,undefined).
# Usage:  scripts/check.sh [--skip-asan]
set -eu

cd "$(dirname "$0")/.."

run_preset() {
  preset="$1"
  echo "==> configure (${preset})"
  cmake --preset "${preset}"
  echo "==> build (${preset})"
  cmake --build --preset "${preset}" -j "$(nproc)"
  echo "==> test (${preset})"
  ctest --preset "${preset}" -j "$(nproc)"
}

run_preset default

if [ "${1:-}" != "--skip-asan" ]; then
  # The JIT compiles plain C helper objects that are dlopen()ed into the
  # sanitized process; suppress the expected ODR/leak noise from the
  # toolchain itself, not from tempest.
  ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}" run_preset asan
fi

echo "==> all checks passed"
