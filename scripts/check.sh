#!/usr/bin/env sh
# Tier-1 verification: build + full test suite under the default (Release)
# preset, then again under the asan preset (-fsanitize=address,undefined).
# Usage:  scripts/check.sh [--fast | --skip-asan]
#   --fast       build the default preset and run only the `unit`-labelled
#                tests (the PR fast lane); implies no asan pass
#   --skip-asan  full default-preset suite, skip the sanitizer pass
set -eu

cd "$(dirname "$0")/.."

run_preset() {
  preset="$1"
  shift
  echo "==> configure (${preset})"
  cmake --preset "${preset}"
  echo "==> build (${preset})"
  cmake --build --preset "${preset}" -j "$(nproc)"
  echo "==> test (${preset})"
  ctest --preset "${preset}" -j "$(nproc)" "$@"
}

if [ "${1:-}" = "--fast" ]; then
  run_preset default -L unit
  echo "==> fast checks passed"
  exit 0
fi

run_preset default

if [ "${1:-}" != "--skip-asan" ]; then
  # The JIT compiles plain C helper objects that are dlopen()ed into the
  # sanitized process; suppress the expected ODR/leak noise from the
  # toolchain itself, not from tempest.
  ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}" run_preset asan
fi

echo "==> all checks passed"
